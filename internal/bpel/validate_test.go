package bpel

import (
	"testing"

	"repro/internal/wsdl"
)

// buyerRegistry registers the operations of the paper's scenario that
// the buyer process touches.
func buyerRegistry(t *testing.T) *wsdl.Registry {
	t.Helper()
	r := wsdl.NewRegistry()
	for _, op := range []struct {
		party string
		name  string
		sync  bool
	}{
		{"A", "orderOp", false},
		{"A", "getStatusOp", false},
		{"A", "terminateOp", false},
		{"B", "deliveryOp", false},
		{"B", "statusOp", false},
	} {
		if err := r.AddOperation(op.party, op.name, op.sync); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestValidateBuyerOK(t *testing.T) {
	p := buyerFixture()
	if err := p.Validate(nil); err != nil {
		t.Fatalf("structural validation failed: %v", err)
	}
	if err := p.Validate(buyerRegistry(t)); err != nil {
		t.Fatalf("registry validation failed: %v", err)
	}
}

func TestValidateHeaderErrors(t *testing.T) {
	if err := (&Process{Owner: "A", Body: &Empty{}}).Validate(nil); err == nil {
		t.Error("nameless process accepted")
	}
	if err := (&Process{Name: "x", Body: &Empty{}}).Validate(nil); err == nil {
		t.Error("ownerless process accepted")
	}
	if err := (&Process{Name: "x", Owner: "A"}).Validate(nil); err == nil {
		t.Error("bodyless process accepted")
	}
}

func TestValidateStructuralErrors(t *testing.T) {
	cases := []struct {
		name string
		body Activity
	}{
		{"flow without branches", &Flow{BlockName: "f"}},
		{"switch without cases", &Switch{BlockName: "s"}},
		{"pick without branches", &Pick{BlockName: "p"}},
		{"while without body", &While{BlockName: "w"}},
		{"scope without body", &Scope{BlockName: "s"}},
		{"switch case nil body", &Switch{BlockName: "s", Cases: []Case{{Cond: "c"}}}},
		{"duplicate siblings", &Sequence{BlockName: "s", Children: []Activity{
			&Empty{BlockName: "same"}, &Empty{BlockName: "same"},
		}}},
		{"nil child", &Sequence{BlockName: "s", Children: []Activity{nil}}},
	}
	for _, tc := range cases {
		p := &Process{Name: "x", Owner: "A", Body: tc.body}
		if err := p.Validate(nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateCommunicationErrors(t *testing.T) {
	cases := []struct {
		name string
		body Activity
	}{
		{"receive without partner", &Receive{BlockName: "r", Op: "x"}},
		{"receive without op", &Receive{BlockName: "r", Partner: "B"}},
		{"partner equals owner", &Invoke{BlockName: "i", Partner: "A", Op: "x"}},
		{"pick branch without partner", &Pick{BlockName: "p", Branches: []OnMessage{{Op: "x", Body: &Empty{}}}}},
	}
	for _, tc := range cases {
		p := &Process{Name: "x", Owner: "A", Body: tc.body}
		if err := p.Validate(nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateAgainstRegistry(t *testing.T) {
	reg := buyerRegistry(t)

	// Unknown receive operation.
	p := &Process{Name: "x", Owner: "B", Body: &Receive{BlockName: "r", Partner: "A", Op: "ghostOp"}}
	if err := p.Validate(reg); err == nil {
		t.Error("receive of unknown op accepted")
	}

	// Unknown invoke operation.
	p = &Process{Name: "x", Owner: "B", Body: &Invoke{BlockName: "i", Partner: "A", Op: "ghostOp"}}
	if err := p.Validate(reg); err == nil {
		t.Error("invoke of unknown op accepted")
	}

	// Sync mismatch.
	p = &Process{Name: "x", Owner: "B", Body: &Invoke{BlockName: "i", Partner: "A", Op: "orderOp", Sync: true}}
	if err := p.Validate(reg); err == nil {
		t.Error("sync mismatch accepted")
	}

	// Reply to async operation.
	p = &Process{Name: "x", Owner: "B", Body: &Reply{BlockName: "r", Partner: "A", Op: "deliveryOp"}}
	if err := p.Validate(reg); err == nil {
		t.Error("reply to async op accepted")
	}

	// Reply to sync operation of the owner is fine.
	regSync := wsdl.NewRegistry()
	if err := regSync.AddOperation("L", "getStatusLOp", true); err != nil {
		t.Fatal(err)
	}
	p = &Process{Name: "x", Owner: "L", Body: &Sequence{BlockName: "s", Children: []Activity{
		&Receive{BlockName: "rcv", Partner: "A", Op: "getStatusLOp"},
		&Reply{BlockName: "rp", Partner: "A", Op: "getStatusLOp"},
	}}}
	if err := p.Validate(regSync); err != nil {
		t.Errorf("valid sync receive/reply rejected: %v", err)
	}

	// Pick receiving an operation the owner does not provide.
	p = &Process{Name: "x", Owner: "B", Body: &Pick{BlockName: "p", Branches: []OnMessage{
		{Partner: "A", Op: "ghostOp", Body: &Empty{}},
	}}}
	if err := p.Validate(reg); err == nil {
		t.Error("pick of unknown op accepted")
	}
}
