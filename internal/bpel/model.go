// Package bpel models the block-structured BPEL subset the paper's
// private processes use (Sec. 2): sequence, flow (parallel), switch
// (data-driven selective), pick (message-driven selective), while,
// receive, reply, invoke (synchronous and asynchronous), assign,
// empty, terminate and scope.
//
// Processes are trees of activities. Every structured activity carries
// a block name; the pair Kind:Name forms the path elements of the
// mapping table of paper Sec. 3.3 ("Sequence:buyer process",
// "While:tracking", ...). The package provides structural navigation
// and copy-on-write editing (Transform), XML (de)serialization in
// BPEL-flavored syntax, and validation against a wsdl.Registry.
package bpel

import (
	"fmt"
	"strings"
)

// Kind discriminates activity types.
type Kind int

// Activity kinds.
const (
	KindSequence Kind = iota
	KindFlow
	KindSwitch
	KindPick
	KindWhile
	KindScope
	KindReceive
	KindReply
	KindInvoke
	KindAssign
	KindEmpty
	KindTerminate
)

var kindNames = map[Kind]string{
	KindSequence:  "Sequence",
	KindFlow:      "Flow",
	KindSwitch:    "Switch",
	KindPick:      "Pick",
	KindWhile:     "While",
	KindScope:     "Scope",
	KindReceive:   "Receive",
	KindReply:     "Reply",
	KindInvoke:    "Invoke",
	KindAssign:    "Assign",
	KindEmpty:     "Empty",
	KindTerminate: "Terminate",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Activity is a node of the process tree. Implementations live in this
// package only.
type Activity interface {
	// Kind returns the activity type.
	Kind() Kind
	// Name returns the activity's block name (may be empty for basic
	// activities).
	Name() string
	// Clone returns a deep copy.
	Clone() Activity

	isActivity()
}

// Element renders the path element of an activity, "Kind:Name"
// ("Sequence:buyer process"); activities without a name render as the
// bare kind ("Terminate").
func Element(a Activity) string {
	if a == nil {
		return ""
	}
	if a.Name() == "" {
		return a.Kind().String()
	}
	return a.Kind().String() + ":" + a.Name()
}

// ---- structured activities ----

// Sequence executes its children in order.
type Sequence struct {
	BlockName string
	Children  []Activity
}

// Flow executes its branches in parallel (interleaved).
type Flow struct {
	BlockName string
	Branches  []Activity
}

// Case is one conditional branch of a Switch.
type Case struct {
	Cond string
	Body Activity
}

// Switch chooses one branch by evaluating data conditions — an
// *internal* choice invisible to partners, which is why the BPEL→aFSA
// mapping marks all branch alternatives as mandatory (DESIGN.md §3).
type Switch struct {
	BlockName string
	Cases     []Case
	// Else is the otherwise branch (nil when absent).
	Else Activity
}

// OnMessage is one branch of a Pick, triggered by receiving Op from
// Partner.
type OnMessage struct {
	Partner string
	Op      string
	Body    Activity
}

// Pick waits for one of several messages — an *external* choice
// resolved by the partner, mapped without a mandatory annotation.
type Pick struct {
	BlockName string
	Branches  []OnMessage
}

// While repeats Body while Cond holds (an internal choice between
// iterating and exiting).
type While struct {
	BlockName string
	Cond      string
	Body      Activity
}

// Scope groups a single child (used for nesting/naming only).
type Scope struct {
	BlockName string
	Body      Activity
}

// ---- basic activities ----

// Receive waits for Partner to invoke Op at the process owner.
type Receive struct {
	BlockName string
	Partner   string
	Op        string
}

// Reply answers a previously received synchronous Op of the owner.
type Reply struct {
	BlockName string
	Partner   string
	Op        string
}

// Invoke calls Op at Partner. When Sync is set the invocation is
// synchronous and implies a response message from Partner back to the
// owner (two aFSA transitions, cf. Fig. 8b).
type Invoke struct {
	BlockName string
	Partner   string
	Op        string
	Sync      bool
}

// Assign manipulates process variables; invisible to partners.
type Assign struct{ BlockName string }

// Empty does nothing.
type Empty struct{ BlockName string }

// Terminate ends the process instance immediately.
type Terminate struct{ BlockName string }

func (a *Sequence) Kind() Kind  { return KindSequence }
func (a *Flow) Kind() Kind      { return KindFlow }
func (a *Switch) Kind() Kind    { return KindSwitch }
func (a *Pick) Kind() Kind      { return KindPick }
func (a *While) Kind() Kind     { return KindWhile }
func (a *Scope) Kind() Kind     { return KindScope }
func (a *Receive) Kind() Kind   { return KindReceive }
func (a *Reply) Kind() Kind     { return KindReply }
func (a *Invoke) Kind() Kind    { return KindInvoke }
func (a *Assign) Kind() Kind    { return KindAssign }
func (a *Empty) Kind() Kind     { return KindEmpty }
func (a *Terminate) Kind() Kind { return KindTerminate }

func (a *Sequence) Name() string  { return a.BlockName }
func (a *Flow) Name() string      { return a.BlockName }
func (a *Switch) Name() string    { return a.BlockName }
func (a *Pick) Name() string      { return a.BlockName }
func (a *While) Name() string     { return a.BlockName }
func (a *Scope) Name() string     { return a.BlockName }
func (a *Receive) Name() string   { return a.BlockName }
func (a *Reply) Name() string     { return a.BlockName }
func (a *Invoke) Name() string    { return a.BlockName }
func (a *Assign) Name() string    { return a.BlockName }
func (a *Empty) Name() string     { return a.BlockName }
func (a *Terminate) Name() string { return a.BlockName }

func (a *Sequence) isActivity()  {}
func (a *Flow) isActivity()      {}
func (a *Switch) isActivity()    {}
func (a *Pick) isActivity()      {}
func (a *While) isActivity()     {}
func (a *Scope) isActivity()     {}
func (a *Receive) isActivity()   {}
func (a *Reply) isActivity()     {}
func (a *Invoke) isActivity()    {}
func (a *Assign) isActivity()    {}
func (a *Empty) isActivity()     {}
func (a *Terminate) isActivity() {}

// Clone implementations (deep).

func cloneSlice(in []Activity) []Activity {
	if in == nil {
		return nil
	}
	out := make([]Activity, len(in))
	for i, a := range in {
		if a != nil {
			out[i] = a.Clone()
		}
	}
	return out
}

func cloneOne(a Activity) Activity {
	if a == nil {
		return nil
	}
	return a.Clone()
}

// Clone returns a deep copy.
func (a *Sequence) Clone() Activity {
	return &Sequence{BlockName: a.BlockName, Children: cloneSlice(a.Children)}
}

// Clone returns a deep copy.
func (a *Flow) Clone() Activity {
	return &Flow{BlockName: a.BlockName, Branches: cloneSlice(a.Branches)}
}

// Clone returns a deep copy.
func (a *Switch) Clone() Activity {
	cases := make([]Case, len(a.Cases))
	for i, c := range a.Cases {
		cases[i] = Case{Cond: c.Cond, Body: cloneOne(c.Body)}
	}
	return &Switch{BlockName: a.BlockName, Cases: cases, Else: cloneOne(a.Else)}
}

// Clone returns a deep copy.
func (a *Pick) Clone() Activity {
	branches := make([]OnMessage, len(a.Branches))
	for i, b := range a.Branches {
		branches[i] = OnMessage{Partner: b.Partner, Op: b.Op, Body: cloneOne(b.Body)}
	}
	return &Pick{BlockName: a.BlockName, Branches: branches}
}

// Clone returns a deep copy.
func (a *While) Clone() Activity {
	return &While{BlockName: a.BlockName, Cond: a.Cond, Body: cloneOne(a.Body)}
}

// Clone returns a deep copy.
func (a *Scope) Clone() Activity {
	return &Scope{BlockName: a.BlockName, Body: cloneOne(a.Body)}
}

// Clone returns a copy.
func (a *Receive) Clone() Activity { c := *a; return &c }

// Clone returns a copy.
func (a *Reply) Clone() Activity { c := *a; return &c }

// Clone returns a copy.
func (a *Invoke) Clone() Activity { c := *a; return &c }

// Clone returns a copy.
func (a *Assign) Clone() Activity { c := *a; return &c }

// Clone returns a copy.
func (a *Empty) Clone() Activity { c := *a; return &c }

// Clone returns a copy.
func (a *Terminate) Clone() Activity { c := *a; return &c }

// Children returns the nested activities of a structured activity in
// document order (Switch: case bodies then Else; Pick: branch bodies).
// Basic activities return nil.
func Children(a Activity) []Activity {
	switch t := a.(type) {
	case *Sequence:
		return append([]Activity(nil), t.Children...)
	case *Flow:
		return append([]Activity(nil), t.Branches...)
	case *Switch:
		var out []Activity
		for _, c := range t.Cases {
			out = append(out, c.Body)
		}
		if t.Else != nil {
			out = append(out, t.Else)
		}
		return out
	case *Pick:
		var out []Activity
		for _, b := range t.Branches {
			out = append(out, b.Body)
		}
		return out
	case *While:
		return []Activity{t.Body}
	case *Scope:
		return []Activity{t.Body}
	}
	return nil
}

// PartnerLink names the counterparty of a bilateral interaction, as
// the paper's partnerLink definitions do.
type PartnerLink struct {
	Name    string
	Partner string // the party this link points at
	// LinkType optionally names a wsdl.PartnerLinkType.
	LinkType string
}

// Process is a private BPEL process.
type Process struct {
	// Name is the process name ("accounting", "buyer", ...).
	Name string
	// Owner is the party executing this process; it determines message
	// directions when deriving the public process.
	Owner string
	// PartnerLinks document the bilateral interactions.
	PartnerLinks []PartnerLink
	// Body is the root activity.
	Body Activity
}

// Clone returns a deep copy of the process.
func (p *Process) Clone() *Process {
	c := &Process{Name: p.Name, Owner: p.Owner}
	c.PartnerLinks = append([]PartnerLink(nil), p.PartnerLinks...)
	c.Body = cloneOne(p.Body)
	return c
}

// Partners returns the distinct partner parties referenced by
// communication activities, in first-appearance order.
func (p *Process) Partners() []string {
	var out []string
	seen := map[string]bool{}
	Walk(p.Body, func(a Activity, _ Path) bool {
		var partner string
		switch t := a.(type) {
		case *Receive:
			partner = t.Partner
		case *Reply:
			partner = t.Partner
		case *Invoke:
			partner = t.Partner
		case *Pick:
			for _, b := range t.Branches {
				if b.Partner != "" && !seen[b.Partner] {
					seen[b.Partner] = true
					out = append(out, b.Partner)
				}
			}
		}
		if partner != "" && !seen[partner] {
			seen[partner] = true
			out = append(out, partner)
		}
		return true
	})
	return out
}

// String renders an indented tree for diagnostics.
func (p *Process) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "process %q (owner %s)\n", p.Name, p.Owner)
	writeTree(&b, p.Body, 1)
	return b.String()
}

func writeTree(b *strings.Builder, a Activity, depth int) {
	if a == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteString(Element(a))
	switch t := a.(type) {
	case *Receive:
		fmt.Fprintf(b, " <- %s.%s", t.Partner, t.Op)
	case *Reply:
		fmt.Fprintf(b, " -> %s.%s (reply)", t.Partner, t.Op)
	case *Invoke:
		arrow := "->"
		if t.Sync {
			arrow = "<->"
		}
		fmt.Fprintf(b, " %s %s.%s", arrow, t.Partner, t.Op)
	case *While:
		fmt.Fprintf(b, " [%s]", t.Cond)
	}
	b.WriteString("\n")
	switch t := a.(type) {
	case *Switch:
		for _, c := range t.Cases {
			fmt.Fprintf(b, "%s  case [%s]\n", indent, c.Cond)
			writeTree(b, c.Body, depth+2)
		}
		if t.Else != nil {
			fmt.Fprintf(b, "%s  otherwise\n", indent)
			writeTree(b, t.Else, depth+2)
		}
	case *Pick:
		for _, br := range t.Branches {
			fmt.Fprintf(b, "%s  onMessage %s.%s\n", indent, br.Partner, br.Op)
			writeTree(b, br.Body, depth+2)
		}
	default:
		for _, c := range Children(a) {
			writeTree(b, c, depth+1)
		}
	}
}
