package bpel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestXMLRoundTrip(t *testing.T) {
	p := buyerFixture()
	data, err := MarshalXML(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalXML(data)
	if err != nil {
		t.Fatalf("UnmarshalXML: %v\nXML:\n%s", err, data)
	}
	if back.Name != p.Name || back.Owner != p.Owner {
		t.Fatalf("header lost: %q/%q", back.Name, back.Owner)
	}
	if len(back.PartnerLinks) != 1 || back.PartnerLinks[0].Partner != "A" {
		t.Fatalf("partner links lost: %v", back.PartnerLinks)
	}
	if p.String() != back.String() {
		t.Fatalf("round trip changed the tree:\nbefore:\n%s\nafter:\n%s", p, back)
	}
}

func TestXMLContainsBPELElements(t *testing.T) {
	p := buyerFixture()
	data, err := MarshalXML(p)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`<process name="buyer" owner="B">`,
		`<sequence name="buyer process">`,
		`<invoke name="order" partner="A" operation="orderOp">`,
		`<while name="tracking" condition="1 = 1">`,
		`<switch name="termination?">`,
		`<case condition="continue">`,
		`<terminate name="end">`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("XML missing %q:\n%s", want, s)
		}
	}
}

func TestXMLRoundTripAllConstructs(t *testing.T) {
	p := &Process{
		Name:  "kitchen-sink",
		Owner: "A",
		Body: &Sequence{BlockName: "root", Children: []Activity{
			&Flow{BlockName: "par", Branches: []Activity{
				&Invoke{BlockName: "i1", Partner: "B", Op: "op1"},
				&Invoke{BlockName: "i2", Partner: "B", Op: "op2", Sync: true},
			}},
			&Pick{BlockName: "choice", Branches: []OnMessage{
				{Partner: "B", Op: "a", Body: &Assign{BlockName: "as"}},
				{Partner: "B", Op: "b", Body: &Empty{BlockName: "em"}},
			}},
			&Switch{BlockName: "sw", Cases: []Case{
				{Cond: "x > 1", Body: &Reply{BlockName: "r", Partner: "B", Op: "op3"}},
			}, Else: &Terminate{BlockName: "t"}},
			&Scope{BlockName: "sc", Body: &Receive{BlockName: "rc", Partner: "B", Op: "op4"}},
			&While{BlockName: "w", Cond: "true", Body: &Empty{BlockName: "we"}},
		}},
	}
	data, err := MarshalXML(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalXML(data)
	if err != nil {
		t.Fatalf("UnmarshalXML: %v\n%s", err, data)
	}
	if p.String() != back.String() {
		t.Fatalf("round trip changed tree:\n%s\nvs\n%s", p, back)
	}
	// Sync attribute preserved.
	inv, err := back.Find(Path{"Sequence:root", "Flow:par", "Invoke:i2"})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.(*Invoke).Sync {
		t.Fatal("sync flag lost in round trip")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"no process", `<sequence/>`},
		{"empty", ``},
		{"two roots", `<process name="x" owner="A"><empty/><empty name="e2"/></process>`},
		{"unknown element", `<process name="x" owner="A"><banana/></process>`},
		{"while two bodies", `<process name="x" owner="A"><while name="w" condition="c"><empty name="a"/><empty name="b"/></while></process>`},
		{"case two bodies", `<process name="x" owner="A"><switch name="s"><case condition="c"><empty name="a"/><empty name="b"/></case></switch></process>`},
		{"bad pick child", `<process name="x" owner="A"><pick name="p"><case condition="c"><empty/></case></pick></process>`},
	}
	for _, tc := range cases {
		if _, err := UnmarshalXML([]byte(tc.xml)); err == nil {
			t.Errorf("%s: UnmarshalXML accepted invalid input", tc.name)
		}
	}
}

func TestUnmarshalHandwrittenBPEL(t *testing.T) {
	src := `
<process name="logistics" owner="L">
  <partnerLinks>
    <partnerLink name="accLogistics" partner="A" partnerLinkType="accLogisticsLT"/>
  </partnerLinks>
  <sequence name="logistics process">
    <receive name="deliver" partner="A" operation="deliverOp"/>
    <invoke name="deliver_conf" partner="A" operation="deliver_confOp"/>
    <while name="serve" condition="1 = 1">
      <pick name="request">
        <onMessage partner="A" operation="getStatusLOp">
          <reply name="status" partner="A" operation="getStatusLOp"/>
        </onMessage>
        <onMessage partner="A" operation="terminateLOp">
          <terminate name="end"/>
        </onMessage>
      </pick>
    </while>
  </sequence>
</process>`
	p, err := UnmarshalXML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Owner != "L" || p.Name != "logistics" {
		t.Fatalf("header: %q %q", p.Name, p.Owner)
	}
	if p.PartnerLinks[0].LinkType != "accLogisticsLT" {
		t.Fatal("partnerLinkType lost")
	}
	pick, err := p.Find(Path{"Sequence:logistics process", "While:serve", "Pick:request"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pick.(*Pick).Branches) != 2 {
		t.Fatal("pick branches lost")
	}
}

func TestXMLEscapesSpecialCharacters(t *testing.T) {
	p := &Process{
		Name:  `quote"name`,
		Owner: "A",
		Body: &Sequence{BlockName: "root & <friends>", Children: []Activity{
			&While{BlockName: "w", Cond: `x < 3 && y > "z"`, Body: &Empty{BlockName: "e"}},
			&Switch{BlockName: "s", Cases: []Case{
				{Cond: `status = "ok"`, Body: &Invoke{BlockName: "i", Partner: "B", Op: "op"}},
			}},
		}},
	}
	data, err := MarshalXML(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalXML(data)
	if err != nil {
		t.Fatalf("UnmarshalXML: %v\n%s", err, data)
	}
	if back.Name != p.Name {
		t.Fatalf("name = %q", back.Name)
	}
	w, err := back.Find(Path{"Sequence:root & <friends>", "While:w"})
	if err != nil {
		t.Fatal(err)
	}
	if w.(*While).Cond != `x < 3 && y > "z"` {
		t.Fatalf("condition mangled: %q", w.(*While).Cond)
	}
	sw, err := back.Find(Path{"Sequence:root & <friends>", "Switch:s"})
	if err != nil {
		t.Fatal(err)
	}
	if sw.(*Switch).Cases[0].Cond != `status = "ok"` {
		t.Fatalf("case condition mangled: %q", sw.(*Switch).Cases[0].Cond)
	}
}

// randomActivity builds a random activity tree for the round-trip
// property test.
func randomActivity(r *rand.Rand, depth int, counter *int) Activity {
	*counter++
	name := fmt.Sprintf("n%d", *counter)
	if depth == 0 {
		switch r.Intn(5) {
		case 0:
			return &Receive{BlockName: name, Partner: "B", Op: "op" + name}
		case 1:
			return &Invoke{BlockName: name, Partner: "B", Op: "op" + name, Sync: r.Intn(2) == 0}
		case 2:
			return &Assign{BlockName: name}
		case 3:
			return &Empty{BlockName: name}
		default:
			return &Reply{BlockName: name, Partner: "B", Op: "op" + name}
		}
	}
	switch r.Intn(6) {
	case 0:
		seq := &Sequence{BlockName: name}
		for i := 0; i < 1+r.Intn(3); i++ {
			seq.Children = append(seq.Children, randomActivity(r, depth-1, counter))
		}
		return seq
	case 1:
		fl := &Flow{BlockName: name}
		for i := 0; i < 1+r.Intn(2); i++ {
			fl.Branches = append(fl.Branches, randomActivity(r, depth-1, counter))
		}
		return fl
	case 2:
		sw := &Switch{BlockName: name}
		for i := 0; i < 1+r.Intn(2); i++ {
			sw.Cases = append(sw.Cases, Case{
				Cond: fmt.Sprintf("cond %d < %d", i, r.Intn(10)),
				Body: randomActivity(r, depth-1, counter),
			})
		}
		if r.Intn(2) == 0 {
			sw.Else = randomActivity(r, depth-1, counter)
		}
		return sw
	case 3:
		pk := &Pick{BlockName: name}
		for i := 0; i < 1+r.Intn(2); i++ {
			*counter++
			pk.Branches = append(pk.Branches, OnMessage{
				Partner: "B",
				Op:      fmt.Sprintf("pickop%d", *counter),
				Body:    randomActivity(r, depth-1, counter),
			})
		}
		return pk
	case 4:
		return &While{BlockName: name, Cond: "i < 5", Body: randomActivity(r, depth-1, counter)}
	default:
		return &Scope{BlockName: name, Body: randomActivity(r, depth-1, counter)}
	}
}

// Property: every generated process XML round-trips structurally.
func TestQuickXMLRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		counter := 0
		p := &Process{Name: "rt", Owner: "A", Body: randomActivity(r, 3, &counter)}
		data, err := MarshalXML(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		back, err := UnmarshalXML(data)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, data)
		}
		if p.String() != back.String() {
			t.Fatalf("trial %d: round trip changed the tree:\n%s\nvs\n%s", trial, p, back)
		}
	}
}
