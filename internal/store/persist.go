package store

// Persistence: the glue between the in-memory sharded store and the
// internal/journal write-ahead log.
//
// Mutations are journaled, derived state is not. Every record carries
// only what a deterministic replay needs — private processes as BPEL
// XML, instance traces, migration-job lifecycle events — and the
// recovery path re-derives public automata, bilateral views, pair
// caches and registries exactly like the live commit path does,
// re-interning each choreography's labels into one fresh shared
// symbol space. A recovered store is therefore structurally identical
// to the pre-crash store: same snapshot versions, same party
// versions, same instance records and schema tags (in the same shard
// slots, so migration refs stay valid), same job states.
//
// Write protocol. Journaled mutators append the record and apply the
// mutation while holding persistMu.RLock, and hold whatever lock
// serializes same-key mutations (the shard map lock for
// create/delete, the per-choreography commit lock for commits, the
// per-entry instance-append lock for instance recording, migMu for
// job creation) across both steps, so the WAL order of records for
// one key always matches the in-memory apply order. Checkpoint takes
// persistMu.Lock, which quiesces every journaled mutation: the
// serialized state corresponds exactly to the journal's last LSN, and
// the journal truncates the WAL knowing the snapshot covers it.
//
// Lock order around persistMu: commitMu and instAppendMu sit OUTSIDE
// it (taken first; Checkpoint never touches either), every other
// store lock (shard maps, instance shards, migMu, job locks) sits
// INSIDE it (persistMu first). Violating either direction can
// deadlock a checkpoint against a mutator.
//
// Failure protocol. If an append fails, the mutation is not applied
// and the caller gets the error — the store never holds state the
// journal missed. The one exception is the migration shard-fold
// observer, which cannot fail the engine: a lost fold record only
// means the shard is re-swept after recovery (tag advances are
// journaled separately, and are monotonic, so re-sweeping is safe).

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/bpel"
	"repro/internal/instance"
	"repro/internal/journal"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/migrate"
)

// WithJournal makes the store durable: every mutation is appended to
// a write-ahead log in dir before it is applied, and Open recovers
// the previous state from dir (snapshot plus log tail) at
// construction. Use store.Open with this option — store.New panics on
// it, because recovery can fail.
func WithJournal(dir string) Option {
	return func(s *Store) { s.journalDir = dir }
}

// WithJournalFsync additionally fsyncs the log on every append:
// mutations then survive kernel crashes and power loss, not just
// process kills, at a significant per-commit latency cost. No effect
// without WithJournal.
func WithJournalFsync() Option {
	return func(s *Store) { s.journalFsync = true }
}

// Open returns a store configured by opts, recovering prior state
// from the journal directory when WithJournal is among them. Without
// WithJournal it is equivalent to New.
func Open(opts ...Option) (*Store, error) {
	s := newStore(opts...)
	if s.journalDir == "" {
		return s, nil
	}
	jnl, snap, tail, err := journal.Open(s.journalDir, journal.WithFsync(s.journalFsync))
	if err != nil {
		return nil, err
	}
	if snap != nil {
		if err := s.restoreSnapshot(snap); err != nil {
			jnl.Close()
			return nil, err
		}
	}
	for _, rec := range tail {
		if err := s.replay(rec.Data); err != nil {
			jnl.Close()
			return nil, fmt.Errorf("store: replaying journal record %d: %w", rec.LSN, err)
		}
	}
	// Journaling starts only now: the replay above must never
	// re-append the records it is applying.
	s.jnl = jnl
	return s, nil
}

// Durable reports whether the store writes a journal.
func (s *Store) Durable() bool { return s.jnl != nil }

// Close drains the store and releases the journal. New mutations fail
// with ErrClosed from the moment Close is entered; then every
// migration sweep is canceled and awaited and every choreography's
// event engine is shut down (failing still-queued ingest submissions
// with ingest.ErrClosed, applying already-claimed batches) — both
// append journal records from background goroutines, so both must be
// quiet before the journal closes underneath them. Close does not
// checkpoint — pair it with Checkpoint for a clean shutdown, or skip
// the checkpoint and let the next Open replay the log. It is
// idempotent; only the first call does the work.
func (s *Store) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	s.closeMu.Unlock()
	// The Lock/Unlock above is a barrier: every admitted mutator has
	// released the gate, so the migration-job set is final and no new
	// ingest engine can appear — one cancel+wait round drains for good.
	s.migMu.Lock()
	jobs := make([]*migrate.Job, 0, len(s.migs))
	for _, job := range s.migs {
		jobs = append(jobs, job)
	}
	s.migMu.Unlock()
	for _, job := range jobs {
		job.Cancel()
	}
	for _, job := range jobs {
		_, _ = job.Wait(context.Background())
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		es := make([]*entry, 0, len(sh.entries))
		for _, e := range sh.entries {
			es = append(es, e)
		}
		sh.mu.RUnlock()
		for _, e := range es {
			e.closeIngest()
		}
	}
	if s.jnl == nil {
		return nil
	}
	return s.jnl.Close()
}

// CheckpointInfo describes a completed checkpoint.
type CheckpointInfo struct {
	// LSN is the last journaled mutation the snapshot covers.
	LSN uint64
	// Bytes is the size of the serialized snapshot.
	Bytes int
}

// Checkpoint serializes the entire store state into the journal's
// snapshot file and truncates the write-ahead log — compaction: the
// next recovery loads one snapshot instead of replaying the full
// mutation history. Journaled mutations are quiesced for the
// duration; reads proceed untouched. It fails with ErrInvalid on a
// store without a journal.
func (s *Store) Checkpoint(ctx context.Context) (CheckpointInfo, error) {
	if s.jnl == nil {
		return CheckpointInfo{}, fmt.Errorf("%w: store has no journal", ErrInvalid)
	}
	if err := ctxErr(ctx); err != nil {
		return CheckpointInfo{}, err
	}
	release, err := s.beginMutation()
	if err != nil {
		return CheckpointInfo{}, err
	}
	defer release()
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	data, err := s.serialize()
	if err != nil {
		return CheckpointInfo{}, err
	}
	if err := s.jnl.Checkpoint(data); err != nil {
		return CheckpointInfo{}, fmt.Errorf("store: %w", err)
	}
	return CheckpointInfo{LSN: s.jnl.LSN(), Bytes: len(data)}, nil
}

// ---- record encoding ----

// walRecord is the journal's record envelope: exactly one field set.
// The //choreolint:union marker makes the walexhaustive analyzer
// reject any nil-dispatch over this struct (replay's switch below)
// that does not cover every exported pointer field — adding a record
// type without teaching replay about it is a lint failure, not a
// silently dropped mutation on the next recovery.
//
//choreolint:union
type walRecord struct {
	Create    *recCreate    `json:"create,omitempty"`
	Delete    *recDelete    `json:"delete,omitempty"`
	Commit    *recCommit    `json:"commit,omitempty"`
	Instances *recInstances `json:"instances,omitempty"`
	Events    *recEvents    `json:"events,omitempty"`
	MigJob    *recMigJob    `json:"migJob,omitempty"`
	MigTags   *recMigTags   `json:"migTags,omitempty"`
	MigShard  *recMigShard  `json:"migShard,omitempty"`
	Idem      *recIdem      `json:"idem,omitempty"`
}

// recCreate journals Create.
type recCreate struct {
	ID      string   `json:"id"`
	SyncOps []string `json:"syncOps,omitempty"`
}

// recDelete journals Delete.
type recDelete struct {
	ID string `json:"id"`
}

// recCommit journals one published snapshot: the private processes of
// the touched parties (the untouched ones are shared with the prior
// snapshot and re-derive from earlier records) and the resulting
// version, which replay verifies.
type recCommit struct {
	ID      string   `json:"id"`
	Version uint64   `json:"version"`
	XMLs    []string `json:"xmls"`
}

// recInstances journals recorded instances with the schema tag they
// were recorded under.
type recInstances struct {
	ID     string          `json:"id"`
	Party  string          `json:"party"`
	Schema uint64          `json:"schema"`
	Insts  []persistedInst `json:"insts"`
}

// recEvent is one ingested message within a recEvents batch.
type recEvent struct {
	Party string      `json:"party"`
	Inst  string      `json:"inst"`
	Label label.Label `json:"label"`
}

// recEvtCreate journals one instance a recEvents batch started
// tracking, with the schema tag decided at live apply time.
type recEvtCreate struct {
	Party  string `json:"party"`
	Inst   string `json:"inst"`
	Schema uint64 `json:"schema"`
}

// recEvents journals one applied lane batch of the streaming event
// path (see ingest.go): the events in apply order plus the *decided
// facts* — instances created by the batch with their creation tags,
// and the online-migration tag advances (monotonic, hence idempotent,
// like recMigTags). Replay applies the recorded outcomes instead of
// re-running the decisions, so recovery is deterministic regardless of
// how concurrent commit records interleave with event records in the
// WAL. Live replay state is derived data and deliberately absent; it
// is rebuilt lazily from the traces after recovery.
type recEvents struct {
	ID      string         `json:"id"`
	Shard   int            `json:"shard"`
	Events  []recEvent     `json:"events"`
	Created []recEvtCreate `json:"created,omitempty"`
	Target  uint64         `json:"target,omitempty"`
	Tags    []tagRef       `json:"tags,omitempty"`
}

// recMigJob journals the creation of a bulk-migration job.
type recMigJob struct {
	Job     string `json:"job"`
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	Shards  int    `json:"shards"`
}

// tagRef addresses one instance record inside a shard, mirroring
// migrate.Item.Ref.
type tagRef struct {
	Party string `json:"party"`
	Ref   int    `json:"ref"`
}

// recMigTags journals one shard's schema-tag advances (the
// instanceSource.Commit of a sweep). Replay re-applies the monotonic
// advance, so the record is idempotent and commutes across concurrent
// sweeps.
type recMigTags struct {
	ID     string   `json:"id"`
	Target uint64   `json:"target"`
	Shard  int      `json:"shard"`
	Refs   []tagRef `json:"refs"`
}

// recIdem journals one idempotency key entering the dedup window,
// with the outcome of the keyed commit it rode behind (see idem.go).
type recIdem struct {
	Key     string `json:"key"`
	ID      string `json:"id"`
	Version uint64 `json:"version"`
}

// recMigShard journals one shard folding into its job's checkpoint.
type recMigShard struct {
	Job      string             `json:"job"`
	Shard    int                `json:"shard"`
	Counts   migrate.Counts     `json:"counts"`
	Stranded []migrate.Stranded `json:"stranded,omitempty"`
}

// appendWAL journals one record; a nil journal appends nothing.
// Callers hold persistMu.RLock plus the inner lock that orders the
// mutation (see the package comment above).
func (s *Store) appendWAL(rec *walRecord) error {
	if s.jnl == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding journal record: %w", err)
	}
	if _, err := s.jnl.Append(data); err != nil {
		return s.checkAppendErr(fmt.Errorf("store: %w", err))
	}
	return nil
}

// persistRLock enters the journaled-mutation critical section,
// returning the matching unlock; both are no-ops on an in-memory
// store.
func (s *Store) persistRLock() func() {
	if s.jnl == nil {
		return func() {}
	}
	s.persistMu.RLock()
	return s.persistMu.RUnlock
}

// publish journals a commit record for next (touched lists the
// parties this commit re-derived) and atomically publishes it; on an
// in-memory store it just publishes. Append and publish share the
// persistMu read lock so a checkpoint can never separate them; the
// caller holds the choreography's commit lock, which orders the
// records of one choreography.
func (s *Store) publish(e *entry, next *Snapshot, touched []*bpel.Process) error {
	return s.publishIdem(e, next, touched, "")
}

// publishIdem is publish with an idempotency key: a non-empty key
// additionally journals a recIdem record behind the commit record and
// enters the key into the dedup window. The commit is already durable
// and applied when the idem append runs, so an idem append failure
// cannot fail the call — it only costs the retry its idempotent
// success (it gets ErrConflict instead; see idem.go).
func (s *Store) publishIdem(e *entry, next *Snapshot, touched []*bpel.Process, key string) error {
	if s.jnl == nil {
		e.snap.Store(next)
		if key != "" {
			s.idemRecord(key, IdemResult{ID: next.ID, Version: next.Version})
		}
		return nil
	}
	rec := recCommit{ID: next.ID, Version: next.Version, XMLs: make([]string, 0, len(touched))}
	for _, p := range touched {
		xml, err := bpel.MarshalXML(p)
		if err != nil {
			return fmt.Errorf("store: journaling %q: %w", p.Owner, err)
		}
		rec.XMLs = append(rec.XMLs, string(xml))
	}
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
	if err := s.appendWAL(&walRecord{Commit: &rec}); err != nil {
		return err
	}
	e.snap.Store(next)
	if key != "" {
		_ = s.appendWAL(&walRecord{Idem: &recIdem{Key: key, ID: next.ID, Version: next.Version}})
		s.idemRecord(key, IdemResult{ID: next.ID, Version: next.Version})
	}
	return nil
}

// recordInstances journals and applies one instance recording. The
// per-entry instance-append lock keeps the WAL order of concurrent
// recordings identical to their in-memory append order — shard slice
// indices are migration refs, so replay must rebuild the slices in
// exactly the original order.
func (s *Store) recordInstances(e *entry, party string, insts []instance.Instance, schema uint64) error {
	if s.jnl == nil {
		e.addInstances(party, insts, schema)
		return nil
	}
	rec := recInstances{ID: e.id, Party: party, Schema: schema, Insts: make([]persistedInst, 0, len(insts))}
	for _, inst := range insts {
		// Party and Schema live on the record envelope (replay reads
		// them from there); the per-inst fields stay zero in the WAL
		// and are only load-bearing in the checkpoint schema.
		rec.Insts = append(rec.Insts, persistedInst{ID: inst.ID, Trace: inst.Trace})
	}
	e.instAppendMu.Lock()
	defer e.instAppendMu.Unlock()
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
	if err := s.appendWAL(&walRecord{Instances: &rec}); err != nil {
		return err
	}
	e.addInstances(party, insts, schema)
	return nil
}

// shardObserver returns the journaling hook for one job's shard
// folds. The closure checks the journal at call time, so it is safe
// to install on jobs restored before journaling starts.
func (s *Store) shardObserver(jobID string) func(int, migrate.Counts, []migrate.Stranded) error {
	return func(shard int, c migrate.Counts, stranded []migrate.Stranded) error {
		if s.jnl == nil {
			return nil
		}
		rec := walRecord{MigShard: &recMigShard{Job: jobID, Shard: shard, Counts: c, Stranded: stranded}}
		s.persistMu.RLock()
		defer s.persistMu.RUnlock()
		// A failed append fails the fold: the shard's tags are already
		// durable (and idempotent to re-apply), but its "done" mark is
		// not, so acking it would let a recovered job regress below
		// what the client saw. The failed sweep resumes with this
		// shard still pending.
		if err := s.appendWAL(&rec); err != nil {
			return s.checkAppendErr(err)
		}
		return nil
	}
}

// ---- snapshot serialization ----

// persistedStore is the checkpoint schema (see docs/persistence.md).
type persistedStore struct {
	Choreographies []persistedChoreo  `json:"choreographies"`
	Jobs           []migrate.JobState `json:"jobs,omitempty"`
}

type persistedChoreo struct {
	ID      string           `json:"id"`
	Version uint64           `json:"version"`
	SyncOps []string         `json:"syncOps,omitempty"`
	Parties []persistedParty `json:"parties"`
	// Instances are serialized in shard-scan order (shard index, then
	// party name, then slice order) so re-adding them one by one
	// reproduces the exact shard slice layout — and with it the refs
	// pending migration jobs address instances by.
	Instances []persistedInst `json:"instances,omitempty"`
}

type persistedParty struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	XML     string `json:"xml"`
}

type persistedInst struct {
	Party  string        `json:"party,omitempty"`
	ID     string        `json:"id"`
	Trace  []label.Label `json:"trace,omitempty"`
	Schema uint64        `json:"schema,omitempty"`
}

// serialize captures the full store state. The caller holds
// persistMu.Lock, so no journaled mutation is in flight; reads still
// are, and every structure touched here is either immutable
// (snapshots, party states) or copied under its own lock.
func (s *Store) serialize() ([]byte, error) {
	var ids []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.entries {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	out := persistedStore{Choreographies: make([]persistedChoreo, 0, len(ids))}
	for _, id := range ids {
		e, err := s.entry(id)
		if err != nil {
			continue // deleted since the scan; its records are gone with it
		}
		pc, err := persistChoreo(e)
		if err != nil {
			return nil, err
		}
		out.Choreographies = append(out.Choreographies, pc)
	}
	s.migMu.Lock()
	for _, jobID := range s.migOrder {
		out.Jobs = append(out.Jobs, s.migs[jobID].State())
	}
	s.migMu.Unlock()
	return json.Marshal(out)
}

func persistChoreo(e *entry) (persistedChoreo, error) {
	snap := e.snap.Load()
	pc := persistedChoreo{
		ID:      snap.ID,
		Version: snap.Version,
		SyncOps: snap.syncOps,
		Parties: make([]persistedParty, 0, len(snap.order)),
	}
	for _, name := range snap.order {
		ps := snap.parties[name]
		xml, err := bpel.MarshalXML(ps.Private)
		if err != nil {
			return persistedChoreo{}, fmt.Errorf("store: serializing %s/%s: %w", snap.ID, name, err)
		}
		pc.Parties = append(pc.Parties, persistedParty{Name: name, Version: ps.Version, XML: string(xml)})
	}
	for i := range e.inst {
		sh := &e.inst[i]
		sh.mu.Lock()
		parties := make([]string, 0, len(sh.recs))
		for party := range sh.recs {
			parties = append(parties, party)
		}
		sort.Strings(parties)
		for _, party := range parties {
			for _, rec := range sh.recs[party] {
				pc.Instances = append(pc.Instances, persistedInst{
					Party: party, ID: rec.inst.ID, Trace: rec.inst.Trace, Schema: rec.schema,
				})
			}
		}
		sh.mu.Unlock()
	}
	return pc, nil
}

// ---- recovery ----

// restoreSnapshot loads a checkpoint into the (still empty,
// single-goroutine) store. Like replay, it is a replaydeterminism
// root: restoring the same checkpoint twice must build identical
// state.
//
//choreolint:replay
func (s *Store) restoreSnapshot(data []byte) error {
	var ps persistedStore
	if err := json.Unmarshal(data, &ps); err != nil {
		return fmt.Errorf("store: decoding checkpoint: %w", err)
	}
	for _, pc := range ps.Choreographies {
		if err := s.restoreChoreo(pc); err != nil {
			return err
		}
	}
	for _, st := range ps.Jobs {
		job := migrate.RestoreJob(st)
		job.Observer = s.shardObserver(st.ID)
		s.migs[st.ID] = job
		s.migOrder = append(s.migOrder, st.ID)
	}
	return nil
}

// restoreChoreo rebuilds one choreography the way the commit path
// built it: registry inferred over all privates, each public
// re-derived and re-interned into one fresh shared interner, pair
// cache recomputed — only the recorded versions are pinned instead of
// recounted. Builder: every snapshot and automaton it touches is under
// construction here, published only at the end via e.snap.Store.
//
//choreolint:builder
func (s *Store) restoreChoreo(pc persistedChoreo) error {
	procs := make([]*bpel.Process, 0, len(pc.Parties))
	for _, pp := range pc.Parties {
		p, err := bpel.UnmarshalXML([]byte(pp.XML))
		if err != nil {
			return fmt.Errorf("store: restoring %s/%s: %w", pc.ID, pp.Name, err)
		}
		if p.Owner != pp.Name {
			return fmt.Errorf("store: restoring %s: party %q carries process owned by %q", pc.ID, pp.Name, p.Owner)
		}
		procs = append(procs, p)
	}
	reg, err := InferRegistry(procs, pc.SyncOps)
	if err != nil {
		return fmt.Errorf("store: restoring %s: %w", pc.ID, err)
	}
	snap := &Snapshot{
		ID:       pc.ID,
		Version:  pc.Version,
		Registry: reg,
		syms:     label.NewInterner(),
		syncOps:  append([]string(nil), pc.SyncOps...),
		parties:  map[string]*PartyState{},
	}
	for i, pp := range pc.Parties {
		res, err := mapping.Derive(procs[i], reg)
		if err != nil {
			return fmt.Errorf("store: restoring %s/%s: %w", pc.ID, pp.Name, err)
		}
		res.Automaton.Reintern(snap.syms)
		snap.parties[pp.Name] = newPartyState(procs[i], res, pp.Version)
		snap.order = append(snap.order, pp.Name)
	}
	snap.computePairs()
	e := &entry{id: pc.ID, cons: map[pairKey]bool{}}
	e.snap.Store(snap)
	for _, pi := range pc.Instances {
		e.addInstances(pi.Party, []instance.Instance{{ID: pi.ID, Trace: pi.Trace}}, pi.Schema)
	}
	sh := s.shardOf(pc.ID)
	sh.mu.Lock()
	sh.entries[pc.ID] = e
	sh.mu.Unlock()
	return nil
}

// replay applies one WAL record. Replay runs single-goroutine on a
// store nobody else can see, before journaling starts. The
// //choreolint:replay marker roots the replaydeterminism analyzer
// here: nothing reachable below may consult the clock, randomness, or
// map iteration order — recovery must be a pure function of the
// journaled facts.
//
//choreolint:replay
func (s *Store) replay(data []byte) error {
	var rec walRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("decoding: %w", err)
	}
	switch {
	case rec.Create != nil:
		return s.applyCreate(rec.Create)
	case rec.Delete != nil:
		return s.applyDelete(rec.Delete)
	case rec.Commit != nil:
		return s.applyCommit(rec.Commit)
	case rec.Instances != nil:
		return s.applyInstances(rec.Instances)
	case rec.Events != nil:
		return s.applyEvents(rec.Events)
	case rec.MigJob != nil:
		return s.applyMigJob(rec.MigJob)
	case rec.MigTags != nil:
		return s.applyMigTags(rec.MigTags)
	case rec.MigShard != nil:
		return s.applyMigShard(rec.MigShard)
	case rec.Idem != nil:
		return s.applyIdem(rec.Idem)
	default:
		return fmt.Errorf("empty record")
	}
}

func (s *Store) applyCreate(rec *recCreate) error {
	sh := s.shardOf(rec.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.entries[rec.ID]; dup {
		return nil
	}
	e := &entry{id: rec.ID, cons: map[pairKey]bool{}}
	e.snap.Store(&Snapshot{
		ID:      rec.ID,
		syms:    label.NewInterner(),
		syncOps: append([]string(nil), rec.SyncOps...),
		parties: map[string]*PartyState{},
	})
	sh.entries[rec.ID] = e
	return nil
}

func (s *Store) applyDelete(rec *recDelete) error {
	sh := s.shardOf(rec.ID)
	sh.mu.Lock()
	delete(sh.entries, rec.ID)
	sh.mu.Unlock()
	return nil
}

func (s *Store) applyCommit(rec *recCommit) error {
	e, err := s.entry(rec.ID)
	if err != nil {
		// A commit raced a delete when the record was written; the live
		// store published to an already-removed entry, so dropping it
		// reproduces the observable state.
		return nil
	}
	cur := e.snap.Load()
	if rec.Version <= cur.Version {
		return nil
	}
	if rec.Version != cur.Version+1 {
		return fmt.Errorf("commit gap: choreography %q at version %d, record %d", rec.ID, cur.Version, rec.Version)
	}
	procs := make([]*bpel.Process, 0, len(rec.XMLs))
	for _, xml := range rec.XMLs {
		p, err := bpel.UnmarshalXML([]byte(xml))
		if err != nil {
			return fmt.Errorf("commit for %q: %w", rec.ID, err)
		}
		procs = append(procs, p)
	}
	next, err := s.rebuildAll(context.Background(), cur, procs)
	if err != nil {
		return fmt.Errorf("commit for %q: %w", rec.ID, err)
	}
	if next.Version != rec.Version {
		return fmt.Errorf("commit for %q rebuilt version %d, record says %d", rec.ID, next.Version, rec.Version)
	}
	e.snap.Store(next)
	return nil
}

func (s *Store) applyInstances(rec *recInstances) error {
	e, err := s.entry(rec.ID)
	if err != nil {
		return nil // raced a delete; see applyCommit
	}
	for _, pi := range rec.Insts {
		e.addInstances(rec.Party, []instance.Instance{{ID: pi.ID, Trace: pi.Trace}}, rec.Schema)
	}
	return nil
}

// applyEvents replays one lane batch of ingested events: traces grow
// by the recorded labels in order, instances the batch started
// tracking are re-created in first-touch order (reproducing the exact
// shard slots), and the journaled tag advances are re-applied
// monotonically. Live replay state stays nil — it is derived data,
// rebuilt lazily on the next event or read.
func (s *Store) applyEvents(rec *recEvents) error {
	e, err := s.entry(rec.ID)
	if err != nil {
		return nil // raced a delete; see applyCommit
	}
	if rec.Shard < 0 || rec.Shard >= instShardCount {
		return fmt.Errorf("ingested events for %q: shard %d out of range", rec.ID, rec.Shard)
	}
	created := make(map[string]uint64, len(rec.Created))
	for _, c := range rec.Created {
		created[instIdxKey(c.Party, c.Inst)] = c.Schema
	}
	sh := &e.inst[rec.Shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, ev := range rec.Events {
		k := instIdxKey(ev.Party, ev.Inst)
		r := sh.idx[k]
		if r == nil {
			schema, isNew := created[k]
			if !isNew {
				return fmt.Errorf("ingested events for %q: unknown instance %s/%s", rec.ID, ev.Party, ev.Inst)
			}
			r = &instRecord{inst: instance.Instance{ID: ev.Inst}, schema: schema}
			sh.appendLocked(ev.Party, r)
		}
		r.inst.Trace = append(r.inst.Trace, ev.Label)
	}
	for _, ref := range rec.Tags {
		recs := sh.recs[ref.Party]
		if ref.Ref < 0 || ref.Ref >= len(recs) {
			return fmt.Errorf("ingested events for %q: ref %s/%d out of range", rec.ID, ref.Party, ref.Ref)
		}
		if r := recs[ref.Ref]; r.schema < rec.Target {
			r.schema = rec.Target
		}
	}
	return nil
}

func (s *Store) applyMigJob(rec *recMigJob) error {
	if _, ok := s.migs[rec.Job]; ok {
		return nil
	}
	job := migrate.RestoreJob(migrate.JobState{
		ID:            rec.Job,
		Choreography:  rec.ID,
		TargetVersion: rec.Version,
		Status:        migrate.StatusRunning, // settled to Canceled (resumable) by RestoreJob
		Done:          make([]bool, rec.Shards),
	})
	job.Observer = s.shardObserver(rec.Job)
	s.migs[rec.Job] = job
	s.migOrder = append(s.migOrder, rec.Job)
	return nil
}

func (s *Store) applyMigTags(rec *recMigTags) error {
	e, err := s.entry(rec.ID)
	if err != nil {
		return nil // raced a delete
	}
	if rec.Shard < 0 || rec.Shard >= instShardCount {
		return fmt.Errorf("migration tags for %q: shard %d out of range", rec.ID, rec.Shard)
	}
	sh := &e.inst[rec.Shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, ref := range rec.Refs {
		recs := sh.recs[ref.Party]
		if ref.Ref < 0 || ref.Ref >= len(recs) {
			return fmt.Errorf("migration tags for %q: ref %s/%d out of range", rec.ID, ref.Party, ref.Ref)
		}
		if r := recs[ref.Ref]; r.schema < rec.Target {
			r.schema = rec.Target
		}
	}
	return nil
}

// applyIdem rebuilds the dedup window entry for one keyed commit.
// idemRecord's eviction is FIFO over insertion order — replay in WAL
// order reproduces the live window exactly.
func (s *Store) applyIdem(rec *recIdem) error {
	s.idemRecord(rec.Key, IdemResult{ID: rec.ID, Version: rec.Version})
	return nil
}

func (s *Store) applyMigShard(rec *recMigShard) error {
	job, ok := s.migs[rec.Job]
	if !ok {
		return nil // the job was evicted before this fold was checkpointed
	}
	job.FoldShard(rec.Shard, rec.Counts, rec.Stranded)
	return nil
}
