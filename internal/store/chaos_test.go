package store

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/instance"
	"repro/internal/scenario"
)

// chaosRate returns the probabilistic fault rate for the soak: the
// CHOREO_CHAOS_RATE environment variable when set (CI can turn the
// screw), 5% otherwise.
func chaosRate(t *testing.T) float64 {
	if v := os.Getenv("CHOREO_CHAOS_RATE"); v != "" {
		rate, err := strconv.ParseFloat(v, 64)
		if err != nil || rate <= 0 || rate > 1 {
			t.Fatalf("CHOREO_CHAOS_RATE=%q: want a float in (0,1]", v)
		}
		return rate
	}
	return 0.05
}

// chaosRetry runs op until it succeeds, tolerating only injected
// faults — any other error fails the test. The store's failure
// protocol makes this safe: a failed append applies nothing, so the
// retry is a clean re-submission, never a double apply.
func chaosRetry(t *testing.T, what string, op func() error) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("%s: non-injected failure: %v", what, err)
		}
		if attempt > 200 {
			t.Fatalf("%s: still failing after %d injected faults: %v", what, attempt, err)
		}
	}
}

// chaosEpisode drives one scripted episode — evolve, commit, adapt,
// migrate, ingest — with every journaled mutation behind chaosRetry.
// Commits carry idempotency keys, as a real client's retries would.
// It asserts outcomes only loosely (the manifest's exact expectations
// are corpus_test.go's job); the soak's real assertion is the
// live-vs-recovered deep equality afterwards.
func chaosEpisode(t *testing.T, s *Store, sc *scenario.Scenario, epi int, ep scenario.Episode) {
	t.Helper()
	ops, err := ep.Operations()
	if err != nil {
		t.Fatal(err)
	}
	var evo *Evolution
	chaosRetry(t, "Evolve", func() error {
		evo, err = s.Evolve(ctx, sc.Name, ep.Party, ops...)
		return err
	})
	key := fmt.Sprintf("chaos-%s-%d", sc.Name, epi)
	chaosRetry(t, "CommitEvolution", func() error {
		_, _, err := s.CommitEvolutionIdem(ctx, evo, key)
		return err
	})
	for _, ad := range ep.Adaptations {
		adOps, err := ad.Operations()
		if err != nil {
			t.Fatal(err)
		}
		chaosRetry(t, "ApplyOps", func() error {
			snap, err := s.Snapshot(ctx, sc.Name)
			if err != nil {
				return err
			}
			ps, ok := snap.Party(ad.Party)
			if !ok {
				return fmt.Errorf("adaptation party %s missing", ad.Party)
			}
			_, err = s.ApplyOps(ctx, sc.Name, ad.Party, adOps, ps.Version)
			return err
		})
	}
	chaosRetry(t, "MigrateAll", func() error {
		_, err := s.MigrateAll(ctx, sc.Name, 4)
		return err
	})
	// Stream the scripted traces. A failed submission may have applied
	// some lanes (the delivery contract), so the retry can double-apply
	// events — harmless here: acked state and journal still agree,
	// which is exactly what the recovery check pins.
	evs := scenario.Events(sc.Instances, fmt.Sprintf("-chaos%d", epi))
	for len(evs) > 0 {
		n := 31
		if n > len(evs) {
			n = len(evs)
		}
		batch := make([]ingest.Event, n)
		for i, ev := range evs[:n] {
			batch[i] = ingest.Event{Party: ev.Party, Instance: ev.Instance, Label: ev.Label}
		}
		chaosRetry(t, "IngestEvents", func() error {
			_, err := s.IngestEvents(ctx, sc.Name, batch)
			return err
		})
		evs = evs[n:]
	}
}

// TestChaosSoak replays the scenario corpus against a journaled store
// with probabilistic journal faults armed (5% by default,
// CHOREO_CHAOS_RATE to override), then kills the store without a
// handshake and reopens the directory. The invariant under fire:
// every acked write survives — the recovered store deep-equals the
// live store's in-memory state, including instance shard slots,
// schema tags, and the idempotency window. WAL truncation faults are
// deliberately NOT armed: a failed rollback poisons the journal and
// degrading mid-soak is its own test (see degraded_test.go).
func TestChaosSoak(t *testing.T) {
	rate := chaosRate(t)
	var before uint64
	for _, name := range fault.Names() {
		n, err := fault.Fires(name)
		if err != nil {
			t.Fatal(err)
		}
		before += n
	}

	for _, sc := range corpusScenarios(t) {
		episodes := sc.Episodes
		if testing.Short() && len(episodes) > 1 {
			episodes = episodes[:1]
		}
		for epi, ep := range episodes {
			sc, epi, ep := sc, epi, ep
			t.Run(sc.Name+"/"+ep.Name, func(t *testing.T) {
				chaosSoakEpisode(t, sc, epi, ep, rate)
			})
		}
	}

	var after uint64
	for _, name := range fault.Names() {
		n, err := fault.Fires(name)
		if err != nil {
			t.Fatal(err)
		}
		after += n
	}
	if after == before {
		t.Fatalf("soak at rate %g injected zero faults — not a chaos test", rate)
	}
	t.Logf("soak injected %d faults at rate %g", after-before, rate)
}

// chaosSoakEpisode is one soak cell: a journaled store under
// probabilistic journal faults carries a corpus episode end to end,
// then the process "dies" — no Close, no final checkpoint — and the
// reopened store must deep-equal the live one.
func chaosSoakEpisode(t *testing.T, sc *scenario.Scenario, epi int, ep scenario.Episode, rate float64) {
	dir := t.TempDir()
	s, err := Open(WithJournal(dir), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range []string{
		fault.PointJournalAppendWrite,
		fault.PointJournalCheckpointWrite,
		fault.PointJournalCheckpointRename,
	} {
		// Distinct fixed seeds per point and episode keep runs
		// reproducible without correlating the fault streams.
		if err := fault.Arm(pt, fault.Trigger{Prob: rate, Seed: uint64(1000*epi + i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(fault.DisarmAll)

	chaosRetry(t, "Create", func() error { return s.Create(ctx, sc.Name, sc.SyncOps) })
	for _, p := range sc.Parties {
		p := p
		chaosRetry(t, "RegisterParty", func() error {
			_, err := s.RegisterParty(ctx, sc.Name, p)
			return err
		})
	}
	for _, p := range sc.Parties {
		var insts []instance.Instance
		for _, in := range sc.InstancesOf(p.Owner) {
			insts = append(insts, instance.Instance{ID: in.ID, Trace: in.Trace})
		}
		if len(insts) == 0 {
			continue
		}
		owner := p.Owner
		chaosRetry(t, "AddInstances", func() error {
			return s.AddInstances(ctx, sc.Name, owner, insts)
		})
	}
	chaosEpisode(t, s, sc, epi, ep)

	// A mid-soak checkpoint under fire: it may fail (tmp write or
	// rename injected), but must never shadow the WAL — recovery below
	// proves it.
	if _, err := s.Checkpoint(ctx); err != nil && !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := s.Degraded(); err != nil {
		t.Fatalf("store degraded during soak: %v", err)
	}

	// Kill without Close, disarm, reopen: zero acked-write loss means
	// the recovered store equals the live one exactly.
	fault.DisarmAll()
	recovered, err := Open(WithJournal(dir), WithShards(4))
	if err != nil {
		t.Fatalf("recovery after soak: %v", err)
	}
	defer recovered.Close()
	assertStoresEqual(t, s, recovered)
}

// BenchmarkChaosSoak measures journaled mutation throughput with 5%
// append faults armed and client-style retries — the price of running
// under fire. faults/op reports the injected-failure mix.
func BenchmarkChaosSoak(b *testing.B) {
	scs, err := scenario.All()
	if err != nil {
		b.Fatal(err)
	}
	sc := scs[0]
	dir := b.TempDir()
	s, err := Open(WithJournal(dir), WithShards(4))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.Create(ctx, sc.Name, sc.SyncOps); err != nil {
		b.Fatal(err)
	}
	for _, p := range sc.Parties {
		if _, err := s.RegisterParty(ctx, sc.Name, p); err != nil {
			b.Fatal(err)
		}
	}
	if err := fault.ArmSpec(fault.PointJournalAppendWrite + "=p:0.05"); err != nil {
		b.Fatal(err)
	}
	defer fault.DisarmAll()

	party := sc.Parties[0].Owner
	var injected uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := []instance.Instance{{ID: fmt.Sprintf("bench-%d", i)}}
		for {
			err := s.AddInstances(ctx, sc.Name, party, inst)
			if err == nil {
				break
			}
			if !errors.Is(err, fault.ErrInjected) {
				b.Fatal(err)
			}
			injected++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(injected)/float64(b.N), "faults/op")
}
