package store

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/ingest"
	"repro/internal/instance"
	"repro/internal/scenario"
)

// corpusScenarios loads the whole scenario corpus.
func corpusScenarios(t *testing.T) []*scenario.Scenario {
	t.Helper()
	scs, err := scenario.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 5 {
		t.Fatalf("corpus has %d scenarios, want at least 5", len(scs))
	}
	return scs
}

// loadCorpusScenario populates a fresh store with one scenario:
// choreography, parties, scripted instances.
func loadCorpusScenario(t *testing.T, s *Store, sc *scenario.Scenario) {
	t.Helper()
	if err := s.Create(ctx, sc.Name, sc.SyncOps); err != nil {
		t.Fatal(err)
	}
	for _, p := range sc.Parties {
		if _, err := s.RegisterParty(ctx, sc.Name, p); err != nil {
			t.Fatalf("RegisterParty(%s): %v", p.Owner, err)
		}
	}
	for _, p := range sc.Parties {
		var insts []instance.Instance
		for _, in := range sc.InstancesOf(p.Owner) {
			insts = append(insts, instance.Instance{ID: in.ID, Trace: in.Trace})
		}
		if len(insts) == 0 {
			continue
		}
		if err := s.AddInstances(ctx, sc.Name, p.Owner, insts); err != nil {
			t.Fatalf("AddInstances(%s): %v", p.Owner, err)
		}
	}
}

// ingestCorpusEvents streams the scenario's scripted traces through
// the ingest path under fresh instance IDs (suffix "-ev").
func ingestCorpusEvents(t *testing.T, s *Store, sc *scenario.Scenario) {
	t.Helper()
	evs := scenario.Events(sc.Instances, "-ev")
	for len(evs) > 0 {
		n := 37
		if n > len(evs) {
			n = len(evs)
		}
		batch := make([]ingest.Event, n)
		for i, ev := range evs[:n] {
			batch[i] = ingest.Event{Party: ev.Party, Instance: ev.Instance, Label: ev.Label}
		}
		got, err := s.IngestEvents(ctx, sc.Name, batch)
		if err != nil {
			t.Fatalf("IngestEvents: %v", err)
		}
		if got != n {
			t.Fatalf("IngestEvents applied %d of %d", got, n)
		}
		evs = evs[n:]
	}
}

// runCorpusEpisode drives one scripted episode end to end — check,
// evolve, classify, commit, adapt, migrate, ingest — asserting the
// manifest's expectations at each step.
func runCorpusEpisode(t *testing.T, s *Store, sc *scenario.Scenario, ep scenario.Episode) {
	t.Helper()
	rep, err := s.Check(ctx, sc.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("base choreography inconsistent: %+v", rep.Pairs)
	}

	ops, err := ep.Operations()
	if err != nil {
		t.Fatalf("decoding episode ops: %v", err)
	}
	evo, err := s.Evolve(ctx, sc.Name, ep.Party, ops...)
	if err != nil {
		t.Fatalf("Evolve: %v", err)
	}
	if evo.PublicChanged != ep.PublicChanged {
		t.Fatalf("PublicChanged = %v, want %v", evo.PublicChanged, ep.PublicChanged)
	}
	seen := map[string]bool{}
	for _, im := range evo.Impacts {
		want, expected := ep.Impacts[im.Partner]
		if !expected {
			if im.ViewChanged {
				t.Errorf("partner %s: unexpected view change (%s %s)",
					im.Partner, im.Classification.Kind, im.Classification.Scope)
			}
			continue
		}
		seen[im.Partner] = true
		if !im.ViewChanged {
			t.Errorf("partner %s: view unchanged, want %s %s", im.Partner, want.Kind, want.Scope)
			continue
		}
		if got := im.Classification.Kind.String(); got != want.Kind {
			t.Errorf("partner %s: kind %s, want %s", im.Partner, got, want.Kind)
		}
		if got := im.Classification.Scope.String(); got != want.Scope {
			t.Errorf("partner %s: scope %s, want %s", im.Partner, got, want.Scope)
		}
	}
	for partner := range ep.Impacts {
		if !seen[partner] {
			t.Errorf("partner %s: no impact reported, want %v", partner, ep.Impacts[partner])
		}
	}

	if _, err := s.CommitEvolution(ctx, evo); err != nil {
		t.Fatalf("CommitEvolution: %v", err)
	}

	// A variant change leaves the choreography inconsistent until the
	// scripted adaptations land (paper Sec. 5); anything else keeps it
	// consistent.
	variant := false
	for _, im := range ep.Impacts {
		if im.Scope == "variant" {
			variant = true
		}
	}
	rep, err = s.Check(ctx, sc.Name)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent() == variant {
		t.Fatalf("post-commit consistency = %v, want %v", rep.Consistent(), !variant)
	}

	for _, ad := range ep.Adaptations {
		adOps, err := ad.Operations()
		if err != nil {
			t.Fatalf("decoding adaptation for %s: %v", ad.Party, err)
		}
		snap, err := s.Snapshot(ctx, sc.Name)
		if err != nil {
			t.Fatal(err)
		}
		ps, ok := snap.Party(ad.Party)
		if !ok {
			t.Fatalf("adaptation party %s missing", ad.Party)
		}
		if _, err := s.ApplyOps(ctx, sc.Name, ad.Party, adOps, ps.Version); err != nil {
			t.Fatalf("ApplyOps(%s): %v", ad.Party, err)
		}
	}
	rep, err = s.Check(ctx, sc.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("choreography still inconsistent after adaptations: %+v", rep.Pairs)
	}

	// Bulk migration: the stranded set must match the script exactly.
	job, err := s.MigrateAll(ctx, sc.Name, 4)
	if err != nil {
		t.Fatalf("MigrateAll: %v", err)
	}
	var got []scenario.Stranded
	for _, st := range job.Stranded() {
		got = append(got, scenario.Stranded{Party: st.Party, ID: st.ID, Status: st.Status.String()})
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].Party != got[j].Party {
			return got[i].Party < got[j].Party
		}
		return got[i].ID < got[j].ID
	})
	if fmt.Sprint(got) != fmt.Sprint(ep.Stranded) {
		t.Fatalf("stranded set:\n got %v\nwant %v", got, ep.Stranded)
	}

	// Streaming replay of the scripted traces against the final
	// schema: every streamed status must equal the whole-trace checker
	// verdict.
	ingestCorpusEvents(t, s, sc)
	snap, err := s.Snapshot(ctx, sc.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sc.Parties {
		states, err := s.InstanceStates(ctx, sc.Name, p.Owner)
		if err != nil {
			t.Fatal(err)
		}
		byID := map[string]InstanceState{}
		for _, st := range states {
			byID[st.ID] = st
		}
		ps, _ := snap.Party(p.Owner)
		for _, in := range sc.InstancesOf(p.Owner) {
			st, ok := byID[in.ID+"-ev"]
			if !ok {
				t.Fatalf("%s/%s-ev: no streamed state", p.Owner, in.ID)
			}
			want, err := instance.Check(instance.Instance{ID: in.ID, Trace: in.Trace}, ps.Public)
			if err != nil {
				t.Fatal(err)
			}
			if st.Status != want {
				t.Errorf("%s/%s-ev: streamed status %v, whole-trace checker says %v", p.Owner, in.ID, st.Status, want)
			}
			if st.TracePos != len(in.Trace) {
				t.Errorf("%s/%s-ev: trace pos %d, want %d", p.Owner, in.ID, st.TracePos, len(in.Trace))
			}
		}
	}
}

// TestCorpusEndToEnd replays every scripted evolution episode of every
// corpus scenario through the full lifecycle: register → check →
// evolve (classification per partner) → commit → adapt → re-check →
// bulk migrate (stranded set) → streaming ingest. In -short mode only
// the first episode of each scenario runs.
func TestCorpusEndToEnd(t *testing.T) {
	for _, sc := range corpusScenarios(t) {
		episodes := sc.Episodes
		if testing.Short() && len(episodes) > 1 {
			episodes = episodes[:1]
		}
		for _, ep := range episodes {
			t.Run(sc.Name+"/"+ep.Name, func(t *testing.T) {
				s := New(WithShards(4))
				loadCorpusScenario(t, s, sc)
				runCorpusEpisode(t, s, sc, ep)
			})
		}
	}
}

// TestCorpusStreamingMatchesWholeTrace is the per-scenario variant of
// TestStreamingMatchesWholeTraceChecker: half of every scripted trace
// streams in under the base schema, the first episode (plus its
// adaptations) commits mid-stream, the rest streams against the new
// schema — and every streamed verdict must match the whole-trace
// checker against the final publics, loops and cancellation branches
// included.
func TestCorpusStreamingMatchesWholeTrace(t *testing.T) {
	for _, sc := range corpusScenarios(t) {
		t.Run(sc.Name, func(t *testing.T) {
			s := New(WithShards(4))
			if err := s.Create(ctx, sc.Name, sc.SyncOps); err != nil {
				t.Fatal(err)
			}
			for _, p := range sc.Parties {
				if _, err := s.RegisterParty(ctx, sc.Name, p); err != nil {
					t.Fatal(err)
				}
			}
			evs := scenario.Events(sc.Instances, "")
			half := len(evs) / 2
			submit := func(evs []scenario.Event) {
				for _, ev := range evs {
					n, err := s.IngestEvents(ctx, sc.Name, []ingest.Event{{Party: ev.Party, Instance: ev.Instance, Label: ev.Label}})
					if err != nil || n != 1 {
						t.Fatalf("IngestEvents: n=%d err=%v", n, err)
					}
				}
			}
			submit(evs[:half])

			ep := sc.Episodes[0]
			ops, err := ep.Operations()
			if err != nil {
				t.Fatal(err)
			}
			evo, err := s.Evolve(ctx, sc.Name, ep.Party, ops...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.CommitEvolution(ctx, evo); err != nil {
				t.Fatal(err)
			}
			for _, ad := range ep.Adaptations {
				adOps, err := ad.Operations()
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.ApplyOps(ctx, sc.Name, ad.Party, adOps, 0); err != nil {
					t.Fatal(err)
				}
			}

			submit(evs[half:])

			snap, err := s.Snapshot(ctx, sc.Name)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range sc.Parties {
				states, err := s.InstanceStates(ctx, sc.Name, p.Owner)
				if err != nil {
					t.Fatal(err)
				}
				byID := map[string]InstanceState{}
				for _, st := range states {
					byID[st.ID] = st
				}
				ps, _ := snap.Party(p.Owner)
				for _, in := range sc.InstancesOf(p.Owner) {
					st, ok := byID[in.ID]
					if !ok {
						t.Fatalf("%s/%s: no streamed state", p.Owner, in.ID)
					}
					want, err := instance.Check(instance.Instance{ID: in.ID, Trace: in.Trace}, ps.Public)
					if err != nil {
						t.Fatal(err)
					}
					if st.Status != want {
						t.Errorf("%s/%s: streamed status %v across schema change, whole-trace checker says %v", p.Owner, in.ID, st.Status, want)
					}
				}
			}
		})
	}
}

// TestCorpusRecovery is the per-scenario kill-and-reopen test: a
// durable store runs a full episode lifecycle (half the scenarios
// checkpoint mid-way so recovery exercises snapshot + WAL tail), is
// killed without any shutdown handshake, and the reopened store must
// be deep-equal to the pre-crash one.
func TestCorpusRecovery(t *testing.T) {
	scs := corpusScenarios(t)
	if testing.Short() {
		scs = scs[:2]
	}
	for i, sc := range scs {
		t.Run(sc.Name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(WithJournal(dir), WithShards(4))
			if err != nil {
				t.Fatal(err)
			}
			loadCorpusScenario(t, s, sc)
			if i%2 == 0 {
				if _, err := s.Checkpoint(ctx); err != nil {
					t.Fatal(err)
				}
			}
			runCorpusEpisode(t, s, sc, sc.Episodes[0])
			// Kill: no Checkpoint, no Close — the journal is all that
			// survives.
			recovered, err := Open(WithJournal(dir), WithShards(4))
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer recovered.Close()
			assertStoresEqual(t, s, recovered)
		})
	}
}
