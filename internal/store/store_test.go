package store

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mapping"
	"repro/internal/paperrepro"
	"repro/internal/wsdl"
)

// derive is a shorthand returning just the public automaton.
func derive(p *bpel.Process, reg *wsdl.Registry) (*afsa.Automaton, error) {
	res, err := mapping.Derive(p, reg)
	if err != nil {
		return nil, err
	}
	return res.Automaton, nil
}

func genID(i int) string { return fmt.Sprintf("conv-%03d", i) }

// ctx is the background context shared by the package tests; the
// cancellation tests build their own.
var ctx = context.Background()

// paperSyncOps marks the one synchronous operation of the paper
// scenario (logistics parcel tracking, Fig. 8b) for registry
// inference.
var paperSyncOps = []string{"L.getStatusLOp"}

// paperStore loads the paper's procurement scenario (Sec. 2) into a
// fresh store.
func paperStore(t *testing.T) (*Store, string) {
	t.Helper()
	s := New(WithShards(4))
	const id = "procurement"
	if err := s.Create(ctx, id, paperSyncOps); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	} {
		if _, err := s.RegisterParty(ctx, id, p); err != nil {
			t.Fatalf("RegisterParty(%s): %v", p.Owner, err)
		}
	}
	return s, id
}

// The inferred registry must reproduce the hand-written paper
// registry: the derived publics agree with a choreography built on
// paperrepro.Registry().
func TestInferredRegistryMatchesPaper(t *testing.T) {
	s, id := paperStore(t)
	snap, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*bpel.Process{
		paperrepro.Buyer:      paperrepro.BuyerProcess(),
		paperrepro.Accounting: paperrepro.AccountingProcess(),
		paperrepro.Logistics:  paperrepro.LogisticsProcess(),
	}
	// Reference derivation through the hand-written registry.
	reg := paperrepro.Registry()
	for name, p := range want {
		ps, ok := snap.Party(name)
		if !ok {
			t.Fatalf("party %s missing", name)
		}
		refRes, err := derive(p, reg)
		if err != nil {
			t.Fatal(err)
		}
		if !afsa.Equivalent(ps.Public, refRes) {
			t.Fatalf("inferred-registry public of %s differs from paper registry derivation", name)
		}
	}
}

func TestCheckAndCaching(t *testing.T) {
	s, id := paperStore(t)
	rep, err := s.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("paper scenario inconsistent: %+v", rep.Pairs)
	}
	if len(rep.Pairs) != 2 {
		t.Fatalf("pairs = %d, want 2 (B↔A, A↔L)", len(rep.Pairs))
	}
	for _, p := range rep.Pairs {
		if p.Cached {
			t.Fatalf("first check reported cached pair %s/%s", p.A, p.B)
		}
	}
	st0 := s.Stats()
	rep2, err := s.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep2.Pairs {
		if !p.Cached {
			t.Fatalf("second check missed the cache for pair %s/%s", p.A, p.B)
		}
	}
	st1 := s.Stats()
	if got := st1.ConsistencyHits - st0.ConsistencyHits; got != 2 {
		t.Fatalf("cache hits on second check = %d, want 2", got)
	}
	if st1.ConsistencyMisses != st0.ConsistencyMisses {
		t.Fatalf("second check recomputed %d pairs", st1.ConsistencyMisses-st0.ConsistencyMisses)
	}
}

// A commit must invalidate exactly the pairs the changed party touches:
// updating the logistics process recomputes A↔L but keeps B↔A cached.
func TestCacheInvalidationIsPairScoped(t *testing.T) {
	s, id := paperStore(t)
	if _, err := s.Check(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateParty(ctx, id, paperrepro.LogisticsProcess(), nil); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	byPair := map[string]bool{}
	for _, p := range rep.Pairs {
		byPair[p.A+"/"+p.B] = p.Cached
	}
	if !byPair["B/A"] {
		t.Fatal("B↔A was invalidated although neither B nor A changed")
	}
	if byPair["A/L"] {
		t.Fatal("A↔L still cached although L changed")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s, id := paperStore(t)
	before, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	accBefore, _ := before.Party(paperrepro.Accounting)
	evo, err := s.Evolve(ctx, id, paperrepro.Accounting, paperrepro.CancelChange())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitEvolution(ctx, evo); err != nil {
		t.Fatal(err)
	}
	// The old snapshot is untouched by the commit.
	accStill, _ := before.Party(paperrepro.Accounting)
	if accStill != accBefore || accStill.Version != accBefore.Version {
		t.Fatal("committed evolution mutated a held snapshot")
	}
	after, _ := s.Snapshot(ctx, id)
	accAfter, _ := after.Party(paperrepro.Accounting)
	if accAfter.Version != accBefore.Version+1 {
		t.Fatalf("accounting version = %d, want %d", accAfter.Version, accBefore.Version+1)
	}
	if afsa.Equivalent(accBefore.Public, accAfter.Public) {
		t.Fatal("cancel change did not alter the accounting public process")
	}
	// Unchanged parties share state (and so their view memos) between
	// the snapshots.
	buyerBefore, _ := before.Party(paperrepro.Buyer)
	buyerAfter, _ := after.Party(paperrepro.Buyer)
	if buyerBefore != buyerAfter {
		t.Fatal("unchanged buyer state was copied instead of shared")
	}
}

func TestCommitConflict(t *testing.T) {
	s, id := paperStore(t)
	evo1, err := s.Evolve(ctx, id, paperrepro.Accounting, paperrepro.OrderTwoChange())
	if err != nil {
		t.Fatal(err)
	}
	evo2, err := s.Evolve(ctx, id, paperrepro.Accounting, paperrepro.CancelChange())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitEvolution(ctx, evo1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitEvolution(ctx, evo2); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale commit error = %v, want ErrConflict", err)
	}
	if s.Stats().Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", s.Stats().Conflicts)
	}
}

// The full Sec. 5.2 loop through the store: evolve, commit, apply the
// suggested buyer adaptation, and the choreography is consistent
// again.
func TestCancelPropagationEndToEnd(t *testing.T) {
	s, id := paperStore(t)
	evo, err := s.Evolve(ctx, id, paperrepro.Accounting, paperrepro.CancelChange())
	if err != nil {
		t.Fatal(err)
	}
	if !evo.NeedsPropagation() {
		t.Fatal("cancel change not flagged for propagation")
	}
	buyer, ok := evo.Impact(paperrepro.Buyer)
	if !ok {
		t.Fatal("no buyer impact")
	}
	if buyer.Classification.Kind != core.KindAdditive || buyer.Classification.Scope != core.ScopeVariant {
		t.Fatalf("buyer classification = %v", buyer.Classification)
	}
	if len(buyer.Plans) != 1 || len(buyer.Suggestions) == 0 {
		t.Fatalf("plans = %d, suggestions = %d", len(buyer.Plans), len(buyer.Suggestions))
	}
	if _, err := s.CommitEvolution(ctx, evo); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent() {
		t.Fatal("choreography should be inconsistent before the buyer adapts")
	}
	var ops []change.Operation
	for _, sg := range buyer.Suggestions {
		if sg.Op != nil {
			ops = append(ops, sg.Op)
		}
	}
	if len(ops) == 0 {
		t.Fatal("no executable suggestion")
	}
	// A stale base version is rejected...
	buyerVersion := evo.PartnerVersions[paperrepro.Buyer]
	if _, err := s.ApplyOps(ctx, id, paperrepro.Buyer, ops, buyerVersion+1); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale ApplyOps error = %v, want ErrConflict", err)
	}
	// ...the recorded one commits.
	if _, err := s.ApplyOps(ctx, id, paperrepro.Buyer, ops, buyerVersion); err != nil {
		t.Fatal(err)
	}
	rep, err = s.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("choreography inconsistent after propagation: %+v", rep.Pairs)
	}
}

// Sec. 5.3: the subtractive tracking-limit change on the buyer, with
// instance migration against the pending schema (Sec. 8).
func TestTrackingLimitWithMigration(t *testing.T) {
	s, id := paperStore(t)
	// Sample running buyer instances under the old (unbounded
	// tracking) schema.
	insts, err := s.SampleInstances(ctx, id, paperrepro.Accounting, 7, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 60 {
		t.Fatalf("sampled %d instances", len(insts))
	}
	evo, err := s.Evolve(ctx, id, paperrepro.Accounting, paperrepro.TrackingLimitChange())
	if err != nil {
		t.Fatal(err)
	}
	if !evo.PublicChanged {
		t.Fatal("tracking limit did not change the accounting public process")
	}
	// Pre-commit what-if: some long-tracking instances cannot migrate.
	rep, err := s.Migrate(ctx, id, paperrepro.Accounting, evo.NewPublic)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 60 {
		t.Fatalf("migration total = %d", rep.Total)
	}
	if rep.Migratable == 0 {
		t.Fatal("no instance migratable at all")
	}
	if rep.Migratable == rep.Total {
		t.Fatal("every instance migratable — the subtractive change should strand long trackers")
	}
	if _, err := s.CommitEvolution(ctx, evo); err != nil {
		t.Fatal(err)
	}
	// Post-commit, nil candidate = current public: same report.
	rep2, err := s.Migrate(ctx, id, paperrepro.Accounting, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Migratable != rep.Migratable || rep2.Total != rep.Total {
		t.Fatalf("post-commit migration %+v differs from pre-commit %+v", rep2, rep)
	}
}

func TestNotFoundAndDuplicates(t *testing.T) {
	s := New()
	if _, err := s.Check(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Check(ghost) = %v, want ErrNotFound", err)
	}
	if err := s.Create(ctx, "c", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(ctx, "c", nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Create = %v, want ErrExists", err)
	}
	if _, err := s.RegisterParty(ctx, "c", paperrepro.BuyerProcess()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterParty(ctx, "c", paperrepro.BuyerProcess()); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate RegisterParty = %v, want ErrExists", err)
	}
	if err := s.Delete(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete = %v, want ErrNotFound", err)
	}
}

// Sharding must keep independent choreographies independent: generated
// two-party conversations register, check and evolve across many IDs.
func TestManyChoreographies(t *testing.T) {
	s := New(WithShards(8))
	p := gen.Params{PartyA: "A", PartyB: "B", Messages: 6, MaxDepth: 2, ChoiceProb: 30, MaxBranch: 2}
	for i := 0; i < 20; i++ {
		id := genID(i)
		conv, err := gen.Generate(int64(i+1), p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Create(ctx, id, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RegisterParty(ctx, id, conv.A); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RegisterParty(ctx, id, conv.B); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Check(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Consistent() {
			t.Fatalf("generated conversation %d inconsistent", i)
		}
	}
	if got := s.Stats().Choreographies; got != 20 {
		t.Fatalf("stored choreographies = %d, want 20", got)
	}
	ids, err := s.IDs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ids); got != 20 {
		t.Fatalf("IDs() = %d, want 20", got)
	}
}
