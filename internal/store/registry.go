package store

import (
	"repro/internal/bpel"
	"repro/internal/mapping"
	"repro/internal/wsdl"
)

// InferRegistry builds a WSDL registry covering every operation the
// processes mention; see mapping.InferRegistry.
func InferRegistry(procs []*bpel.Process, syncOps []string) (*wsdl.Registry, error) {
	return mapping.InferRegistry(procs, syncOps)
}
