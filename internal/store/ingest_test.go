package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/change"
	"repro/internal/ingest"
	"repro/internal/instance"
	"repro/internal/label"
	"repro/internal/paperrepro"
)

// sampleTraces draws valid conversation traces of a party as event
// sources for the streaming tests.
func sampleTraces(t *testing.T, s *Store, id, party string, seed int64, n, maxLen int) []instance.Instance {
	t.Helper()
	snap, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := snap.Party(party)
	if !ok {
		t.Fatalf("party %s missing", party)
	}
	return instance.SampleInstances(ps.Public, seed, n, maxLen)
}

// interleave turns per-instance traces into one round-robin event
// stream: per-instance order is preserved, instances are interleaved.
func interleave(party string, insts []instance.Instance) []ingest.Event {
	var out []ingest.Event
	for pos := 0; ; pos++ {
		progressed := false
		for _, inst := range insts {
			if pos < len(inst.Trace) {
				out = append(out, ingest.Event{Party: party, Instance: inst.ID, Label: inst.Trace[pos]})
				progressed = true
			}
		}
		if !progressed {
			return out
		}
	}
}

// submitAll feeds a stream through IngestEvents in deterministic
// random-sized batches.
func submitAll(t *testing.T, s *Store, id string, events []ingest.Event, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for len(events) > 0 {
		n := r.Intn(40) + 1
		if n > len(events) {
			n = len(events)
		}
		got, err := s.IngestEvents(ctx, id, events[:n])
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Fatalf("IngestEvents applied %d of %d", got, n)
		}
		events = events[n:]
	}
}

func TestStreamingMatchesWholeTraceChecker(t *testing.T) {
	s, id := paperStore(t)
	parties := []string{paperrepro.Buyer, paperrepro.Accounting, paperrepro.Logistics}

	// Phase 1: stream the first half of every trace.
	perParty := map[string][]instance.Instance{}
	var firstHalf, secondHalf []ingest.Event
	for i, party := range parties {
		sampled := sampleTraces(t, s, id, party, int64(500+i), 20, 10)
		// An instance only exists on the streaming path once an event
		// arrives, so empty sampled traces are no instances at all.
		insts := sampled[:0]
		for _, inst := range sampled {
			if len(inst.Trace) > 0 {
				insts = append(insts, inst)
			}
		}
		// Salt in deviating instances: valid prefix, then a label the
		// interner has never seen.
		for j := 0; j < 3; j++ {
			insts = append(insts, instance.Instance{
				ID:    fmt.Sprintf("dev-%d", j),
				Trace: append(append([]label.Label{}, insts[j].Trace...), label.Label(fmt.Sprintf("%s#Z#bogus%dOp", party, j))),
			})
		}
		perParty[party] = insts
		stream := interleave(party, insts)
		firstHalf = append(firstHalf, stream[:len(stream)/2]...)
		secondHalf = append(secondHalf, stream[len(stream)/2:]...)
	}
	submitAll(t, s, id, firstHalf, 1)

	// Interleaved schema commit: accounting caps its tracking loop.
	evo, err := s.Evolve(ctx, id, paperrepro.Accounting, paperrepro.TrackingLimitChange())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitEvolution(ctx, evo); err != nil {
		t.Fatal(err)
	}

	// Phase 2: stream the rest against the new schema.
	submitAll(t, s, id, secondHalf, 2)

	snap, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	for _, party := range parties {
		ps, _ := snap.Party(party)
		chk, err := ps.complianceChecker()
		if err != nil {
			t.Fatal(err)
		}
		// Recorded traces must be exactly the submitted event streams.
		recorded, err := s.Instances(ctx, id, party)
		if err != nil {
			t.Fatal(err)
		}
		wantTraces := map[string][]label.Label{}
		for _, inst := range perParty[party] {
			wantTraces[inst.ID] = inst.Trace
		}
		if len(recorded) != len(perParty[party]) {
			t.Fatalf("%s: %d recorded instances, want %d", party, len(recorded), len(perParty[party]))
		}
		for _, inst := range recorded {
			want := wantTraces[inst.ID]
			if len(inst.Trace) != len(want) {
				t.Fatalf("%s/%s: trace length %d, want %d", party, inst.ID, len(inst.Trace), len(want))
			}
			for i := range want {
				if inst.Trace[i] != want[i] {
					t.Fatalf("%s/%s: trace[%d] = %s, want %s", party, inst.ID, i, inst.Trace[i], want[i])
				}
			}
		}
		// The streaming classification must deep-equal the whole-trace
		// checker verdict, deviation point included.
		states, err := s.InstanceStates(ctx, id, party)
		if err != nil {
			t.Fatal(err)
		}
		byID := map[string]InstanceState{}
		for _, st := range states {
			byID[st.Party+"\x00"+st.ID] = st
		}
		if len(states) != len(recorded) {
			t.Fatalf("%s: %d instance states, want %d", party, len(states), len(recorded))
		}
		for _, inst := range recorded {
			st, ok := byID[party+"\x00"+inst.ID]
			if !ok {
				t.Fatalf("%s/%s: no streamed state", party, inst.ID)
			}
			wantStatus, err := instance.Check(inst, ps.Public)
			if err != nil {
				t.Fatal(err)
			}
			wantDev := -1
			q := chk.Start()
			for i, l := range inst.Trace {
				if q = chk.Step(q, l); q < 0 {
					wantDev = i
					break
				}
			}
			if st.Status != wantStatus || st.Deviation != wantDev || st.TracePos != len(inst.Trace) {
				t.Fatalf("%s/%s: streamed {status %v, dev %d, pos %d}, whole-trace {status %v, dev %d, pos %d}",
					party, inst.ID, st.Status, st.Deviation, st.TracePos, wantStatus, wantDev, len(inst.Trace))
			}
			// Schema tags never run ahead of the snapshot and never
			// downgrade below the pre-commit creation tag floor.
			if st.Schema > snap.Version {
				t.Fatalf("%s/%s: schema tag %d beyond snapshot %d", party, inst.ID, st.Schema, snap.Version)
			}
		}
	}
	st := s.Stats()
	if st.OnlineMigrations == 0 {
		t.Fatal("no online migrations across an interleaved schema commit")
	}
	if want := uint64(len(firstHalf) + len(secondHalf)); st.EventsIngested != want {
		t.Fatalf("eventsIngested = %d, want %d", st.EventsIngested, want)
	}
}

// An instance at a compliant point whose tag trails a committed schema
// migrates online with its next event; a deviated instance is stranded
// with its deviation point recorded.
func TestIngestOnlineMigration(t *testing.T) {
	s, id := paperStore(t)
	base, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	ev := func(inst string, l string) ingest.Event {
		return ingest.Event{Party: paperrepro.Buyer, Instance: inst, Label: label.Label(l)}
	}
	// Track two instances under the base schema: one compliant, one
	// deviating on its second message.
	if _, err := s.IngestEvents(ctx, id, []ingest.Event{
		ev("good", "B#A#orderOp"),
		ev("bad", "B#A#orderOp"), ev("bad", "B#Z#nonsenseOp"),
	}); err != nil {
		t.Fatal(err)
	}
	states, err := s.InstanceStates(ctx, id, paperrepro.Buyer)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]InstanceState{}
	for _, st := range states {
		byID[st.ID] = st
	}
	if got := byID["good"]; got.Schema != base.Version || got.Status != instance.Migratable || got.Deviation != -1 {
		t.Fatalf("good pre-commit: %+v", got)
	}
	if got := byID["bad"]; got.Status != instance.NonReplayable || got.Deviation != 1 {
		t.Fatalf("bad pre-commit: %+v", got)
	}

	evo, err := s.Evolve(ctx, id, paperrepro.Accounting, paperrepro.TrackingLimitChange())
	if err != nil {
		t.Fatal(err)
	}
	next, err := s.CommitEvolution(ctx, evo)
	if err != nil {
		t.Fatal(err)
	}

	// Next event: "good" migrates online, "bad" stays stranded on its
	// old tag with the deviation point intact.
	if _, err := s.IngestEvents(ctx, id, []ingest.Event{
		ev("good", "A#B#deliveryOp"),
		ev("bad", "A#B#deliveryOp"),
	}); err != nil {
		t.Fatal(err)
	}
	states, err = s.InstanceStates(ctx, id, paperrepro.Buyer)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		byID[st.ID] = st
	}
	if got := byID["good"]; got.Schema != next.Version || got.Status != instance.Migratable || got.TracePos != 2 {
		t.Fatalf("good post-commit: %+v, want schema %d", got, next.Version)
	}
	if got := byID["bad"]; got.Schema != base.Version || got.Status != instance.NonReplayable || got.Deviation != 1 || got.TracePos != 3 {
		t.Fatalf("bad post-commit: %+v, want stranded at schema %d with deviation 1", got, base.Version)
	}
	if st := s.Stats(); st.OnlineMigrations != 1 {
		t.Fatalf("onlineMigrations = %d, want 1", st.OnlineMigrations)
	}
}

func TestIngestValidation(t *testing.T) {
	s, id := paperStore(t)
	if _, err := s.IngestEvents(ctx, id, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty batch: %v, want ErrInvalid", err)
	}
	if _, err := s.IngestEvents(ctx, id, []ingest.Event{{Party: paperrepro.Buyer, Label: "B#A#orderOp"}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("missing instance: %v, want ErrInvalid", err)
	}
	if _, err := s.IngestEvents(ctx, id, []ingest.Event{{Party: "Nobody", Instance: "i", Label: "B#A#orderOp"}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown party: %v, want ErrNotFound", err)
	}
	if _, err := s.IngestEvents(ctx, "nope", []ingest.Event{{Party: paperrepro.Buyer, Instance: "i", Label: "B#A#orderOp"}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown choreography: %v, want ErrNotFound", err)
	}
}

// A batch larger than a lane's queue bound is rejected with
// backpressure before anything applies, and the rejection is counted.
func TestIngestBackpressureCounted(t *testing.T) {
	s := New(WithShards(2), WithIngestWorkers(1), WithIngestQueueCap(1))
	const id = "bp"
	if err := s.Create(ctx, id, paperSyncOps); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterParty(ctx, id, paperrepro.BuyerProcess()); err != nil {
		t.Fatal(err)
	}
	batch := []ingest.Event{
		{Party: paperrepro.Buyer, Instance: "i", Label: "B#A#orderOp"},
		{Party: paperrepro.Buyer, Instance: "i", Label: "B#A#getStatusOp"},
	}
	_, err := s.IngestEvents(ctx, id, batch)
	if !errors.Is(err, ingest.ErrBackpressure) {
		t.Fatalf("oversized batch: %v, want backpressure", err)
	}
	var bp *ingest.BackpressureError
	if !errors.As(err, &bp) || bp.RetryAfter <= 0 {
		t.Fatalf("no retry-after hint: %v", err)
	}
	st := s.Stats()
	if st.IngestRejected != 2 || st.EventsIngested != 0 {
		t.Fatalf("stats = {rejected %d, ingested %d}, want {2, 0}", st.IngestRejected, st.EventsIngested)
	}
	if insts, _ := s.Instances(ctx, id, paperrepro.Buyer); len(insts) != 0 {
		t.Fatalf("rejected batch left %d instances", len(insts))
	}
	// A fitting batch still goes through.
	if _, err := s.IngestEvents(ctx, id, batch[:1]); err != nil {
		t.Fatal(err)
	}
}

// Stats counts tracked instances per choreography across both the
// batch path (AddInstances) and the streaming path (created by
// ingestion).
func TestStatsTrackedInstances(t *testing.T) {
	s, id := paperStore(t)
	if _, err := s.SampleInstances(ctx, id, paperrepro.Buyer, 7, 5, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestEvents(ctx, id, []ingest.Event{
		{Party: paperrepro.Accounting, Instance: "x", Label: "B#A#orderOp"},
		{Party: paperrepro.Accounting, Instance: "y", Label: "B#A#orderOp"},
	}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TrackedInstances != 7 {
		t.Fatalf("trackedInstances = %d, want 7", st.TrackedInstances)
	}
	if got := st.InstancesByChoreography[id]; got != 7 {
		t.Fatalf("instancesByChoreography[%s] = %d, want 7", id, got)
	}
}

// Streaming ingestion, schema commits, bulk migration sweeps and batch
// instance recording race against each other; run under -race in CI.
func TestIngestConcurrentHammer(t *testing.T) {
	s, id := paperStore(t)
	rounds, ingesters := 12, 3
	if testing.Short() {
		rounds, ingesters = 4, 2
	}
	parties := []string{paperrepro.Buyer, paperrepro.Accounting, paperrepro.Logistics}
	streams := make([][]ingest.Event, ingesters)
	for g := range streams {
		party := parties[g%len(parties)]
		insts := sampleTraces(t, s, id, party, int64(900+g), 15, 8)
		for i := range insts {
			insts[i].ID = fmt.Sprintf("h%d-%s", g, insts[i].ID)
		}
		streams[g] = interleave(party, insts)
	}
	var wg sync.WaitGroup
	errc := make(chan error, ingesters+3)
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			events := streams[g]
			for len(events) > 0 {
				n := 16
				if n > len(events) {
					n = len(events)
				}
				if _, err := s.IngestEvents(ctx, id, events[:n]); err != nil {
					if errors.Is(err, ingest.ErrBackpressure) {
						continue
					}
					errc <- fmt.Errorf("ingester %d: %w", g, err)
					return
				}
				events = events[n:]
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		alt := []change.Operation{
			paperrepro.TrackingLimitChange(),
			change.Replace{Path: nil, New: paperrepro.AccountingProcess().Body},
		}
		for i := 0; i < rounds; i++ {
			evo, err := s.Evolve(ctx, id, paperrepro.Accounting, alt[i%2])
			if err != nil {
				errc <- fmt.Errorf("evolve: %w", err)
				return
			}
			if _, err := s.CommitEvolution(ctx, evo); err != nil && !errors.Is(err, ErrConflict) {
				errc <- fmt.Errorf("commit: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			job, err := s.StartMigration(ctx, id, 2)
			if err != nil {
				errc <- fmt.Errorf("migration: %w", err)
				return
			}
			if _, err := job.Wait(ctx); err != nil {
				errc <- fmt.Errorf("migration wait: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := s.SampleInstances(ctx, id, parties[i%len(parties)], int64(i), 10, 6); err != nil {
				errc <- fmt.Errorf("sample: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Settled store: every streamed classification equals the
	// whole-trace verdict under the final schema.
	snap, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	for _, party := range parties {
		ps, _ := snap.Party(party)
		states, err := s.InstanceStates(ctx, id, party)
		if err != nil {
			t.Fatal(err)
		}
		insts, err := s.Instances(ctx, id, party)
		if err != nil {
			t.Fatal(err)
		}
		byID := map[string]instance.Instance{}
		for _, inst := range insts {
			byID[inst.ID] = inst
		}
		for _, st := range states {
			inst, ok := byID[st.ID]
			if !ok {
				t.Fatalf("%s/%s: streamed state without a record", party, st.ID)
			}
			want, err := instance.Check(inst, ps.Public)
			if err != nil {
				t.Fatal(err)
			}
			if st.Status != want {
				t.Fatalf("%s/%s: streamed status %v, whole-trace %v", party, st.ID, st.Status, want)
			}
		}
	}
}
