package store

import (
	"fmt"
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/scenario"
)

// fuzzOpFromBytes decodes one change operation from the fuzz input
// cursor against the party's current process: the first byte picks the
// op kind, the following bytes pick target paths, partners and
// conditions. Returns false when the input is exhausted.
func fuzzOpFromBytes(data []byte, pos *int, p *bpel.Process, partners []string, serial int) (change.Operation, bool) {
	next := func() (byte, bool) {
		if *pos >= len(data) {
			return 0, false
		}
		b := data[*pos]
		*pos++
		return b, true
	}
	kind, ok := next()
	if !ok {
		return nil, false
	}
	sel, ok := next()
	if !ok {
		return nil, false
	}
	var paths []bpel.Path
	bpel.Walk(p.Body, func(_ bpel.Activity, path bpel.Path) bool {
		paths = append(paths, append(bpel.Path(nil), path...))
		return true
	})
	if len(paths) == 0 {
		return nil, false
	}
	path := paths[int(sel)%len(paths)]
	partner := partners[int(sel)%len(partners)]
	freshInv := &bpel.Invoke{
		BlockName: fmt.Sprintf("fuzz invoke %d", serial),
		Partner:   partner,
		Op:        fmt.Sprintf("fuzzOp%d", serial),
	}
	switch kind % 8 {
	case 0:
		return change.Insert{Path: path, New: &bpel.Empty{BlockName: fmt.Sprintf("fuzz empty %d", serial)}, After: sel%2 == 0}, true
	case 1:
		return change.Insert{Path: path, New: &bpel.Assign{BlockName: fmt.Sprintf("fuzz assign %d", serial)}, After: sel%2 == 1}, true
	case 2:
		return change.Delete{Path: path}, true
	case 3:
		return change.Replace{Path: path, New: &bpel.Empty{BlockName: fmt.Sprintf("fuzz hole %d", serial)}}, true
	case 4:
		return change.Replace{Path: path, New: freshInv}, true
	case 5:
		return change.Append{Path: path, New: freshInv}, true
	case 6:
		cond := "1 = 1"
		if sel%2 == 0 {
			cond = "count < 3"
		}
		return change.SetWhileCond{Path: path, Cond: cond}, true
	default:
		anchor := ""
		if len(path) > 0 {
			anchor = path[len(path)-1]
		}
		other := paths[int(kind)%len(paths)]
		return change.Shift{Path: other, Anchor: anchor, After: sel%2 == 0}, true
	}
}

// FuzzEvolveOps throws random op transactions at Evolve across the
// whole scenario corpus. Two invariants: Evolve never panics (malformed
// transactions fail with an error), and for every transaction that
// applies cleanly the analysis is path-independent — evolving through
// the op sequence classifies exactly like evolving through a single
// replace-the-whole-process op with the same final private (v1 ≡ v2).
func FuzzEvolveOps(f *testing.F) {
	scs, err := scenario.All()
	if err != nil {
		f.Fatal(err)
	}
	stores := make([]*Store, len(scs))
	for i, sc := range scs {
		s := New(WithShards(2))
		if err := s.Create(ctx, sc.Name, sc.SyncOps); err != nil {
			f.Fatal(err)
		}
		for _, p := range sc.Parties {
			if _, err := s.RegisterParty(ctx, sc.Name, p); err != nil {
				f.Fatal(err)
			}
		}
		stores[i] = s
	}

	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 1, 2, 7, 0, 3})
	f.Add([]byte{2, 3, 4, 5, 5, 9, 6, 2})
	f.Add([]byte{7, 200, 150, 3, 17, 4, 80, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		si := int(data[0]) % len(scs)
		sc, s := scs[si], stores[si]
		party := sc.Parties[int(data[1])%len(sc.Parties)].Owner
		var partners []string
		for _, p := range sc.Parties {
			partners = append(partners, p.Owner)
		}

		base := sc.Party(party)
		pos := 2
		var ops []change.Operation
		for serial := 0; len(ops) < 4; serial++ {
			op, ok := fuzzOpFromBytes(data, &pos, base, partners, serial)
			if !ok {
				break
			}
			ops = append(ops, op)
		}
		if len(ops) == 0 {
			return
		}

		// Reference: apply the ops offline. A transaction that fails
		// offline must fail in Evolve too (and must not panic).
		final := base
		var applyErr error
		for _, op := range ops {
			if final, applyErr = op.Apply(final); applyErr != nil {
				break
			}
		}

		evo, err := s.Evolve(ctx, sc.Name, party, ops...)
		if applyErr != nil {
			if err == nil {
				t.Fatalf("%s/%s: Evolve accepted a transaction that fails offline (%v)", sc.Name, party, applyErr)
			}
			return
		}
		refOp := change.Replace{Path: nil, New: final.Body}
		ref, refErr := s.Evolve(ctx, sc.Name, party, refOp)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("%s/%s: op-sequence Evolve err=%v, replace-process Evolve err=%v", sc.Name, party, err, refErr)
		}
		if err != nil {
			// Both paths rejected the result (e.g. an invalid process);
			// agreeing on failure is all we ask.
			return
		}

		if evo.PublicChanged != ref.PublicChanged {
			t.Fatalf("%s/%s: PublicChanged %v via ops, %v via replaceProcess", sc.Name, party, evo.PublicChanged, ref.PublicChanged)
		}
		if !afsa.Equivalent(evo.NewPublic, ref.NewPublic) {
			t.Fatalf("%s/%s: new publics differ between op-sequence and replace-process analysis", sc.Name, party)
		}
		for _, im := range evo.Impacts {
			rim, ok := ref.Impact(im.Partner)
			if !ok {
				t.Fatalf("%s/%s: partner %s impacted via ops but absent via replaceProcess", sc.Name, party, im.Partner)
			}
			if im.ViewChanged != rim.ViewChanged {
				t.Fatalf("%s/%s: partner %s ViewChanged %v via ops, %v via replaceProcess", sc.Name, party, im.Partner, im.ViewChanged, rim.ViewChanged)
			}
			if !im.ViewChanged {
				continue
			}
			if im.Classification.Kind != rim.Classification.Kind || im.Classification.Scope != rim.Classification.Scope {
				t.Fatalf("%s/%s: partner %s classified %s %s via ops, %s %s via replaceProcess",
					sc.Name, party, im.Partner,
					im.Classification.Kind, im.Classification.Scope,
					rim.Classification.Kind, rim.Classification.Scope)
			}
		}
	})
}
