package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/instance"
	"repro/internal/label"
	"repro/internal/migrate"
	"repro/internal/paperrepro"
)

// ---- deep equality ----

// instKey flattens one tracked instance record for comparison.
type instKey struct {
	shard  int
	party  string
	idx    int
	id     string
	trace  string
	schema uint64
}

// instLayout captures an entry's exact instance-shard layout —
// including slice positions, which pending migration jobs address
// records by.
func instLayout(e *entry) []instKey {
	var out []instKey
	for i := range e.inst {
		sh := &e.inst[i]
		sh.mu.Lock()
		parties := make([]string, 0, len(sh.recs))
		for party := range sh.recs {
			parties = append(parties, party)
		}
		sort.Strings(parties)
		for _, party := range parties {
			for idx, rec := range sh.recs[party] {
				trace := ""
				for _, l := range rec.inst.Trace {
					trace += string(l) + ";"
				}
				out = append(out, instKey{shard: i, party: party, idx: idx, id: rec.inst.ID, trace: trace, schema: rec.schema})
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// assertStoresEqual fails unless got is deep-equal to want:
// choreographies, snapshot and party versions, private processes,
// public automata (language + annotations), interacting pairs,
// consistency results, instance records with their schema tags and
// shard slots, and migration-job states.
func assertStoresEqual(t *testing.T, want, got *Store) {
	t.Helper()
	wantIDs, err := want.IDs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, err := got.IDs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(wantIDs)
	sort.Strings(gotIDs)
	if fmt.Sprint(wantIDs) != fmt.Sprint(gotIDs) {
		t.Fatalf("choreography IDs: recovered %v, want %v", gotIDs, wantIDs)
	}
	for _, id := range wantIDs {
		ws, err := want.Snapshot(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := got.Snapshot(ctx, id)
		if err != nil {
			t.Fatalf("%s: missing after recovery: %v", id, err)
		}
		if gs.Version != ws.Version {
			t.Fatalf("%s: recovered version %d, want %d", id, gs.Version, ws.Version)
		}
		if fmt.Sprint(gs.Parties()) != fmt.Sprint(ws.Parties()) {
			t.Fatalf("%s: recovered parties %v, want %v", id, gs.Parties(), ws.Parties())
		}
		for _, name := range ws.Parties() {
			wp, _ := ws.Party(name)
			gp, ok := gs.Party(name)
			if !ok {
				t.Fatalf("%s/%s: missing after recovery", id, name)
			}
			if gp.Version != wp.Version {
				t.Fatalf("%s/%s: recovered party version %d, want %d", id, name, gp.Version, wp.Version)
			}
			wx, err := bpel.MarshalXML(wp.Private)
			if err != nil {
				t.Fatal(err)
			}
			gx, err := bpel.MarshalXML(gp.Private)
			if err != nil {
				t.Fatal(err)
			}
			if string(wx) != string(gx) {
				t.Fatalf("%s/%s: recovered private process differs:\n%s\nwant:\n%s", id, name, gx, wx)
			}
			if !afsa.Equivalent(wp.Public, gp.Public) {
				t.Fatalf("%s/%s: recovered public process not equivalent", id, name)
			}
		}
		if fmt.Sprint(gs.InteractingPairs()) != fmt.Sprint(ws.InteractingPairs()) {
			t.Fatalf("%s: recovered pairs %v, want %v", id, gs.InteractingPairs(), ws.InteractingPairs())
		}
		wrep, err := want.Check(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		grep, err := got.Check(ctx, id)
		if err != nil {
			t.Fatalf("%s: recovered check: %v", id, err)
		}
		if len(wrep.Pairs) != len(grep.Pairs) {
			t.Fatalf("%s: recovered %d pair results, want %d", id, len(grep.Pairs), len(wrep.Pairs))
		}
		for i := range wrep.Pairs {
			w, g := wrep.Pairs[i], grep.Pairs[i]
			if w.A != g.A || w.B != g.B || w.Consistent != g.Consistent {
				t.Fatalf("%s: pair %d recovered %+v, want %+v", id, i, g, w)
			}
		}
		we, err := want.entry(id)
		if err != nil {
			t.Fatal(err)
		}
		ge, err := got.entry(id)
		if err != nil {
			t.Fatal(err)
		}
		wl, gl := instLayout(we), instLayout(ge)
		if fmt.Sprint(wl) != fmt.Sprint(gl) {
			t.Fatalf("%s: recovered instance layout differs:\n got %v\nwant %v", id, gl, wl)
		}
	}
	assertJobsEqual(t, want, got)
}

func assertJobsEqual(t *testing.T, want, got *Store) {
	t.Helper()
	wjobs := jobStates(want)
	gjobs := jobStates(got)
	if len(wjobs) != len(gjobs) {
		t.Fatalf("recovered %d migration jobs, want %d", len(gjobs), len(wjobs))
	}
	for id, w := range wjobs {
		g, ok := gjobs[id]
		if !ok {
			t.Fatalf("job %s missing after recovery", id)
		}
		if g.Choreography != w.Choreography || g.TargetVersion != w.TargetVersion || g.Status != w.Status {
			t.Fatalf("job %s recovered {%s v%d %s}, want {%s v%d %s}",
				id, g.Choreography, g.TargetVersion, g.Status, w.Choreography, w.TargetVersion, w.Status)
		}
		if fmt.Sprint(g.Done) != fmt.Sprint(w.Done) {
			t.Fatalf("job %s recovered shard checkpoint differs", id)
		}
		if g.Counts != w.Counts {
			t.Fatalf("job %s recovered counts %+v, want %+v", id, g.Counts, w.Counts)
		}
		sortStranded(w.Stranded)
		sortStranded(g.Stranded)
		if fmt.Sprint(g.Stranded) != fmt.Sprint(w.Stranded) {
			t.Fatalf("job %s recovered stranded report differs:\n got %v\nwant %v", id, g.Stranded, w.Stranded)
		}
	}
}

func jobStates(s *Store) map[string]migrate.JobState {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	out := make(map[string]migrate.JobState, len(s.migs))
	for id, job := range s.migs {
		out[id] = job.State()
	}
	return out
}

func sortStranded(sts []migrate.Stranded) {
	sort.Slice(sts, func(a, b int) bool {
		if sts[a].Party != sts[b].Party {
			return sts[a].Party < sts[b].Party
		}
		return sts[a].ID < sts[b].ID
	})
}

// ---- deterministic random op sequences ----

// opSeq drives one store through a deterministic pseudo-random
// mutation sequence; applying the same seq to two stores yields
// identical states.
type opSeq struct {
	rng  *rand.Rand
	ids  []string // live choreographies
	next int      // next choreography number
}

func newOpSeq(seed int64) *opSeq { return &opSeq{rng: rand.New(rand.NewSource(seed))} }

func (q *opSeq) genParams() gen.Params {
	return gen.Params{
		PartyA: "A", PartyB: "B",
		Messages:   3 + q.rng.Intn(4),
		MaxDepth:   2,
		ChoiceProb: 30,
		MaxBranch:  2,
	}
}

// step applies one random mutation; checkpoint decides whether
// Checkpoint is among the candidate operations (it must be excluded
// when a mirror store without a journal replays the sequence).
func (q *opSeq) step(t *testing.T, s *Store, checkpoint bool) {
	t.Helper()
	choice := q.rng.Intn(100)
	switch {
	case choice < 20 || len(q.ids) == 0:
		id := fmt.Sprintf("chor-%03d", q.next)
		q.next++
		if err := s.Create(ctx, id, nil); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
		conv, err := gen.Generate(q.rng.Int63(), q.genParams())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.PutParties(ctx, id, []*bpel.Process{conv.A, conv.B}, nil); err != nil {
			t.Fatalf("put parties %s: %v", id, err)
		}
		q.ids = append(q.ids, id)
	case choice < 40:
		id := q.pick()
		conv, err := gen.Generate(q.rng.Int63(), q.genParams())
		if err != nil {
			t.Fatal(err)
		}
		p := conv.A
		if q.rng.Intn(2) == 0 {
			p = conv.B
		}
		if _, err := s.UpdateParty(ctx, id, p, nil); err != nil {
			t.Fatalf("update %s/%s: %v", id, p.Owner, err)
		}
	case choice < 55:
		// Evolve-and-commit a whole-body replacement: the analyzed
		// path, exercising CommitEvolution's journaling.
		id := q.pick()
		conv, err := gen.Generate(q.rng.Int63(), q.genParams())
		if err != nil {
			t.Fatal(err)
		}
		party := conv.A.Owner
		evo, err := s.Evolve(ctx, id, party, change.Replace{New: conv.A.Body})
		if err != nil {
			t.Fatalf("evolve %s/%s: %v", id, party, err)
		}
		if _, err := s.CommitEvolution(ctx, evo); err != nil {
			t.Fatalf("commit %s/%s: %v", id, party, err)
		}
	case choice < 68:
		id := q.pick()
		party := "A"
		if q.rng.Intn(2) == 0 {
			party = "B"
		}
		if _, err := s.SampleInstances(ctx, id, party, q.rng.Int63(), 1+q.rng.Intn(6), 3+q.rng.Intn(6)); err != nil {
			t.Fatalf("sample %s/%s: %v", id, party, err)
		}
	case choice < 78:
		id := q.pick()
		if _, err := s.MigrateAll(ctx, id, 1+q.rng.Intn(3)); err != nil {
			t.Fatalf("migrate %s: %v", id, err)
		}
	case choice < 89:
		// Streaming ingest targeting a single instance: one lane, one
		// apply, exactly one WAL record — which keeps the
		// cut-at-every-op boundaries of the recovery harness valid.
		// Reused instance IDs extend earlier traces; a junk label (one
		// the interner has never seen) records a deviation.
		id := q.pick()
		party := "A"
		if q.rng.Intn(2) == 0 {
			party = "B"
		}
		instID := fmt.Sprintf("ing-%02d", q.rng.Intn(24))
		junk := q.rng.Intn(4) == 0
		junkN := q.rng.Intn(3)
		sampleSeed := q.rng.Int63()
		maxLen := 2 + q.rng.Intn(5)
		snap, err := s.Snapshot(ctx, id)
		if err != nil {
			t.Fatalf("snapshot %s: %v", id, err)
		}
		ps, ok := snap.Party(party)
		if !ok {
			t.Fatalf("%s: party %s missing", id, party)
		}
		var evs []ingest.Event
		for _, l := range instance.SampleInstances(ps.Public, sampleSeed, 1, maxLen)[0].Trace {
			evs = append(evs, ingest.Event{Party: party, Instance: instID, Label: l})
		}
		if junk || len(evs) == 0 {
			evs = append(evs, ingest.Event{
				Party: party, Instance: instID,
				Label: label.Label(fmt.Sprintf("%s#Z#junk%dOp", party, junkN)),
			})
		}
		if _, err := s.IngestEvents(ctx, id, evs); err != nil {
			t.Fatalf("ingest %s/%s: %v", id, party, err)
		}
	case choice < 93 && len(q.ids) > 1:
		i := q.rng.Intn(len(q.ids))
		id := q.ids[i]
		q.ids = append(q.ids[:i], q.ids[i+1:]...)
		if err := s.Delete(ctx, id); err != nil {
			t.Fatalf("delete %s: %v", id, err)
		}
	default:
		if checkpoint {
			if _, err := s.Checkpoint(ctx); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		} else if len(q.ids) > 0 {
			// Mirror runs trade the checkpoint slot for a cheap read.
			if _, err := s.Check(ctx, q.pick()); err != nil {
				t.Fatalf("check: %v", err)
			}
		}
	}
}

func (q *opSeq) pick() string { return q.ids[q.rng.Intn(len(q.ids))] }

// ---- the recovery property ----

// TestRecoverRandomOps is the kill-and-reopen property test: a
// durable store driven through a random mutation sequence (with
// checkpoints interleaved, so recovery exercises snapshot + log tail)
// is killed without any shutdown handshake and reopened; the
// recovered store must be deep-equal to the pre-crash one.
func TestRecoverRandomOps(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	steps := 60
	if testing.Short() {
		seeds = seeds[:3]
		steps = 30
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(WithJournal(dir), WithShards(4))
			if err != nil {
				t.Fatal(err)
			}
			q := newOpSeq(seed)
			for i := 0; i < steps; i++ {
				q.step(t, s, true)
			}
			// Kill: no Checkpoint, no Close. The journal on disk is all
			// that survives.
			recovered, err := Open(WithJournal(dir), WithShards(4))
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer recovered.Close()
			assertStoresEqual(t, s, recovered)
		})
	}
}

// TestRecoverCutAtEveryOp kills the store after every prefix of a
// random op sequence — simulating a crash at each append boundary,
// with trailing garbage standing in for the torn first record of the
// next mutation — and checks the recovered store equals an in-memory
// mirror that ran exactly that prefix.
func TestRecoverCutAtEveryOp(t *testing.T) {
	const seed = 42
	steps := 25
	if testing.Short() {
		steps = 12
	}
	dir := t.TempDir()
	s, err := Open(WithJournal(dir), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := newOpSeq(seed)
	cuts := make([]int64, 0, steps)
	for i := 0; i < steps; i++ {
		q.step(t, s, false) // no checkpoints: WAL offsets must only grow
		cuts = append(cuts, s.jnl.WALSize())
	}
	wal, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	for i, cut := range cuts {
		t.Run(fmt.Sprintf("op%02d", i), func(t *testing.T) {
			cutDir := t.TempDir()
			torn := append(append([]byte(nil), wal[:cut]...), 0x7f, 0x3a, 0x99)
			if err := os.WriteFile(filepath.Join(cutDir, "wal.log"), torn, 0o644); err != nil {
				t.Fatal(err)
			}
			recovered, err := Open(WithJournal(cutDir), WithShards(4))
			if err != nil {
				t.Fatalf("recovery at op %d: %v", i, err)
			}
			defer recovered.Close()
			mirror := New(WithShards(4))
			mq := newOpSeq(seed)
			for j := 0; j <= i; j++ {
				mq.step(t, mirror, false)
			}
			assertStoresEqual(t, mirror, recovered)
		})
	}
}

// TestRecoverAfterCheckpointOnly pins pure-snapshot recovery: after a
// checkpoint and a clean close, reopening must restore everything
// from the snapshot alone (the WAL is empty).
func TestRecoverAfterCheckpointOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	seedPaperScenario(t, s)
	if _, err := s.MigrateAll(ctx, "procurement", 2); err != nil {
		t.Fatal(err)
	}
	info, err := s.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.LSN == 0 || info.Bytes == 0 {
		t.Fatalf("checkpoint info = %+v", info)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	assertStoresEqual(t, s, recovered)
	// The recovered store keeps journaling: another mutation and
	// reopen must survive too.
	if _, err := recovered.SampleInstances(ctx, "procurement", paperrepro.Buyer, 7, 3, 6); err != nil {
		t.Fatal(err)
	}
	third, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	assertStoresEqual(t, recovered, third)
}

// seedPaperScenario loads the paper's procurement scenario plus a few
// instances into a store through its public mutation API.
func seedPaperScenario(t *testing.T, s *Store) {
	t.Helper()
	if err := s.Create(ctx, "procurement", paperSyncOps); err != nil {
		t.Fatal(err)
	}
	procs := []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	}
	if _, err := s.PutParties(ctx, "procurement", procs, nil); err != nil {
		t.Fatal(err)
	}
	for i, party := range []string{paperrepro.Buyer, paperrepro.Accounting, paperrepro.Logistics} {
		if _, err := s.SampleInstances(ctx, "procurement", party, int64(100+i), 10, 8); err != nil {
			t.Fatal(err)
		}
	}
	evo, err := s.Evolve(ctx, "procurement", paperrepro.Accounting, paperrepro.TrackingLimitChange())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitEvolution(ctx, evo); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveredMigrationResumes pins the crash-interrupted sweep
// story: a job created pre-crash is recovered in a resumable state
// and a post-recovery MigrateAll completes it with exact counters.
func TestRecoveredMigrationResumes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	seedPaperScenario(t, s)
	job, err := s.MigrateAll(ctx, "procurement", 2)
	if err != nil {
		t.Fatal(err)
	}
	want := job.Snapshot()
	recovered, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	rjob, err := recovered.MigrationJob(ctx, "procurement", job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := rjob.Snapshot(); got.Status != migrate.StatusDone || got.Counts != want.Counts {
		t.Fatalf("recovered job = %+v, want done with %+v", got, want.Counts)
	}
	// Idempotence across the crash: re-running the recovered job must
	// not re-sweep or change anything.
	again, err := recovered.MigrateAll(ctx, "procurement", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Snapshot(); got.Counts != want.Counts {
		t.Fatalf("re-run after recovery changed counters: %+v, want %+v", got.Counts, want.Counts)
	}
}

// TestTornInstanceRecordDiscarded is the focused torn-tail test of
// the acceptance criteria: the final record is physically truncated
// mid-payload, and recovery must come back without it — not fail.
func TestTornInstanceRecordDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	seedPaperScenario(t, s)
	before := s.jnl.WALSize()
	if _, err := s.SampleInstances(ctx, "procurement", paperrepro.Buyer, 99, 5, 8); err != nil {
		t.Fatal(err)
	}
	recs, err := s.InstanceRecords(ctx, "procurement", paperrepro.Buyer)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Tear the last record: cut half of its bytes.
	walPath := filepath.Join(dir, "wal.log")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, before+(int64(len(full))-before)/2); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	defer recovered.Close()
	rrecs, err := recovered.InstanceRecords(ctx, "procurement", paperrepro.Buyer)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(recs) - 5; len(rrecs) != want {
		t.Fatalf("recovered %d buyer instances, want %d (torn record dropped)", len(rrecs), want)
	}
}

// TestCheckpointRequiresJournal pins the in-memory error.
func TestCheckpointRequiresJournal(t *testing.T) {
	s := New()
	if _, err := s.Checkpoint(ctx); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Checkpoint on in-memory store = %v, want ErrInvalid", err)
	}
}

// TestNewPanicsOnJournal pins that the error-less constructor refuses
// the fallible option.
func TestNewPanicsOnJournal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(WithJournal) did not panic")
		}
	}()
	New(WithJournal(t.TempDir()))
}

// ingestWave feeds one deterministic interleaved mix of streaming
// events and batch-recorded instances into st's procurement
// choreography. Waves build on each other: wave 2 reuses wave 1's
// instance IDs, so its events extend traces that — after a crash —
// exist only as recovered WAL facts, forcing live-state rebuilds.
func ingestWave(t *testing.T, st *Store, wave int) {
	t.Helper()
	snap, err := st.Snapshot(ctx, "procurement")
	if err != nil {
		t.Fatal(err)
	}
	for pi, party := range []string{paperrepro.Buyer, paperrepro.Accounting, paperrepro.Logistics} {
		ps, ok := snap.Party(party)
		if !ok {
			t.Fatalf("party %s missing", party)
		}
		insts := instance.SampleInstances(ps.Public, int64(wave*100+pi), 6, 8)
		for i := range insts {
			// Stable across waves: wave 2 appends to wave 1's records.
			insts[i].ID = fmt.Sprintf("st-%d", i)
		}
		// One deviator per party per wave: a valid first message, then a
		// label no interner has ever produced.
		insts = append(insts, instance.Instance{
			ID:    fmt.Sprintf("dev-%d", wave),
			Trace: []label.Label{"B#A#orderOp", label.Label(fmt.Sprintf("%s#Z#bogus%dOp", party, wave))},
		})
		var stream []ingest.Event
		for pos := 0; ; pos++ {
			progressed := false
			for _, inst := range insts {
				if pos < len(inst.Trace) {
					stream = append(stream, ingest.Event{Party: party, Instance: inst.ID, Label: inst.Trace[pos]})
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		// Interleave event batches with AddInstances so recEvents and
		// instance records land mixed in the WAL, sharing the
		// per-entry append-lock ordering.
		for batch := 0; len(stream) > 0; batch++ {
			n := 7
			if n > len(stream) {
				n = len(stream)
			}
			if _, err := st.IngestEvents(ctx, "procurement", stream[:n]); err != nil {
				t.Fatalf("wave %d ingest %s: %v", wave, party, err)
			}
			stream = stream[n:]
			if batch%3 == 0 {
				adds := []instance.Instance{{ID: fmt.Sprintf("add-w%d-%s-%d", wave, party, batch)}}
				if err := st.AddInstances(ctx, "procurement", party, adds); err != nil {
					t.Fatalf("wave %d add %s: %v", wave, party, err)
				}
			}
		}
	}
}

// TestRecoverIngestInterleavedWithAddInstances pins the WAL ordering of
// streaming event records against batch instance records: a store fed
// an interleaved mix is killed without a handshake, and the recovered
// store must match exactly — shard slots, traces, schema tags. It then
// pins that recovery is not a dead end: the recovered store resumes
// ingestion, and its per-instance streaming state stays identical to a
// mirror that never crashed.
func TestRecoverIngestInterleavedWithAddInstances(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(WithJournal(dir), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	mirror := New(WithShards(4))
	for _, st := range []*Store{s, mirror} {
		seedPaperScenario(t, st)
		ingestWave(t, st, 1)
	}
	// Kill: no Checkpoint, no Close. Only the journal survives.
	recovered, err := Open(WithJournal(dir), WithShards(4))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer recovered.Close()
	assertStoresEqual(t, s, recovered)

	// Resume ingestion on the recovered store; the never-killed mirror
	// runs the identical wave as the reference.
	ingestWave(t, mirror, 2)
	ingestWave(t, recovered, 2)
	assertStoresEqual(t, mirror, recovered)
	for _, party := range []string{paperrepro.Buyer, paperrepro.Accounting, paperrepro.Logistics} {
		want, err := mirror.InstanceStates(ctx, "procurement", party)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recovered.InstanceStates(ctx, "procurement", party)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: resumed instance states differ:\n got %v\nwant %v", party, got, want)
		}
	}
}

// TestInstanceRecordingOrderSurvives pins the ref-stability invariant
// directly: instances recorded for several parties land in identical
// shard slots after recovery, so the refs of a half-done job stay
// valid.
func TestInstanceRecordingOrderSurvives(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Create(ctx, "c", nil); err != nil {
		t.Fatal(err)
	}
	conv, err := gen.Generate(5, gen.Params{PartyA: "A", PartyB: "B", Messages: 5, MaxDepth: 2, ChoiceProb: 25, MaxBranch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutParties(ctx, "c", []*bpel.Process{conv.A, conv.B}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		party := "A"
		if i%3 == 0 {
			party = "B"
		}
		if err := s.AddInstances(ctx, "c", party, []instance.Instance{{ID: fmt.Sprintf("i-%02d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	recovered, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	we, _ := s.entry("c")
	ge, _ := recovered.entry("c")
	if fmt.Sprint(instLayout(we)) != fmt.Sprint(instLayout(ge)) {
		t.Fatal("instance shard layout changed across recovery")
	}
	s.Close()
}
