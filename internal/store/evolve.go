package store

import (
	"context"
	"fmt"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/core"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/wsdl"
)

// PartnerImpact describes the effect of an analyzed change on one
// partner (mirrors the paper's Fig. 4 loop: classification, plans,
// suggestions).
type PartnerImpact struct {
	Partner string
	// ViewChanged reports whether the partner's view of the originator
	// changed at all; when false nothing else is set.
	ViewChanged bool
	// Classification is the two-dimensional classification (Defs. 5/6).
	Classification core.Classification
	// OldView/NewView are the partner's views of the originator before
	// and after the change.
	OldView, NewView *afsa.Automaton
	// Plans are the propagation plans (empty for invariant changes).
	Plans []*core.Plan
	// Suggestions are ready-to-review private adaptations per plan.
	Suggestions []core.Suggestion
}

// Evolution is an analyzed-but-not-committed change: the outcome of
// Evolve, pinned to the snapshot version it was computed against.
// Committing it succeeds only while the choreography has not advanced
// (optimistic concurrency).
type Evolution struct {
	// Choreography and BaseVersion pin the analysis to its snapshot.
	Choreography string
	BaseVersion  uint64
	// Party is the change originator.
	Party string
	// Ops are the analyzed operations — one change transaction applied
	// in order; classification, plans and suggestions describe the
	// combined delta.
	Ops []change.Operation
	// NewPrivate/NewPublic/NewTable are the originator's state after
	// the change; Registry the re-inferred operation registry.
	NewPrivate *bpel.Process
	OldPublic  *afsa.Automaton
	NewPublic  *afsa.Automaton
	NewTable   mapping.Table
	Registry   *wsdl.Registry
	// PublicChanged reports whether the public process changed at all.
	PublicChanged bool
	Impacts       []PartnerImpact
	// PartnerVersions records each partner's party version at analysis
	// time: the propagation plans and suggestion paths are only valid
	// against these versions (ApplyOps checks them).
	PartnerVersions map[string]uint64
}

// NeedsPropagation reports whether any partner requires propagation.
func (evo *Evolution) NeedsPropagation() bool {
	for _, im := range evo.Impacts {
		if im.ViewChanged && im.Classification.Scope == core.ScopeVariant {
			return true
		}
	}
	return false
}

// Impact returns the impact on one partner.
func (evo *Evolution) Impact(partner string) (*PartnerImpact, bool) {
	for i := range evo.Impacts {
		if evo.Impacts[i].Partner == partner {
			return &evo.Impacts[i], true
		}
	}
	return nil, false
}

// Evolve analyzes the application of ops — one change transaction,
// applied in order — to party's private process against the current
// snapshot, without mutating anything: re-derive the public view once
// for the combined delta, classify per partner (Defs. 5/6), and for
// variant changes compute propagation plans and adaptation suggestions
// (Secs. 5.1–5.3). Concurrent Evolve calls on the same choreography
// proceed in parallel; each works on the snapshot it loaded. The
// expensive per-partner loop honors ctx cancellation.
func (s *Store) Evolve(ctx context.Context, id, party string, ops ...change.Operation) (*Evolution, error) {
	snap, err := s.Snapshot(ctx, id)
	if err != nil {
		return nil, err
	}
	return s.evolveSnapshot(ctx, snap, party, ops)
}

func (s *Store) evolveSnapshot(ctx context.Context, snap *Snapshot, party string, ops []change.Operation) (*Evolution, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("%w: no operations to analyze", ErrInvalid)
	}
	s.evolutions.Add(1)
	originator, ok := snap.parties[party]
	if !ok {
		return nil, fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, party, snap.ID)
	}
	newPrivate := originator.Private
	for _, op := range ops {
		next, err := op.Apply(newPrivate)
		if err != nil {
			return nil, fmt.Errorf("%w: applying %s: %v", ErrInvalid, op, err)
		}
		newPrivate = next
	}
	// The changed process may introduce operations the current
	// registry has never seen (e.g. the paper's cancelOp), so the
	// registry is re-inferred with the candidate process substituted.
	reg, err := InferRegistry(snap.privates(newPrivate), snap.syncOps)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	res, err := mapping.Derive(newPrivate, reg)
	if err != nil {
		return nil, fmt.Errorf("store: deriving changed public process: %w", err)
	}
	// Deliberately NOT reinterned into snap.syms here: what-if
	// analyses run on the candidate's private interner (operators
	// align symbol spaces on the fly), so rejected candidates never
	// grow the choreography's shared, append-only symbol space. The
	// commit path moves the public onto the shared interner.
	evo := &Evolution{
		Choreography:    snap.ID,
		BaseVersion:     snap.Version,
		Party:           party,
		Ops:             ops,
		NewPrivate:      newPrivate,
		OldPublic:       originator.Public,
		NewPublic:       res.Automaton,
		NewTable:        res.Table,
		Registry:        reg,
		PartnerVersions: map[string]uint64{},
	}
	evo.PublicChanged = !afsa.Equivalent(originator.Public, res.Automaton)
	if !evo.PublicChanged {
		return evo, nil
	}
	for _, partnerName := range snap.PartnersOf(party) {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		partner := snap.parties[partnerName]
		evo.PartnerVersions[partnerName] = partner.Version
		impact := PartnerImpact{Partner: partnerName}
		impact.OldView = s.view(originator, partnerName)
		impact.NewView = res.Automaton.View(partnerName)
		impact.ViewChanged = !afsa.Equivalent(impact.OldView, impact.NewView)
		if !impact.ViewChanged {
			evo.Impacts = append(evo.Impacts, impact)
			continue
		}
		partnerView := s.view(partner, party)
		impact.Classification, err = core.Classify(impact.OldView, impact.NewView, partnerView)
		if err != nil {
			return nil, err
		}
		if impact.Classification.Scope == core.ScopeVariant {
			if err := s.planPropagation(snap, party, partner, &impact); err != nil {
				return nil, err
			}
		}
		evo.Impacts = append(evo.Impacts, impact)
	}
	return evo, nil
}

// planPropagation runs steps 1–3 of Secs. 5.2/5.3 against a partner,
// lifting the new view over the partner's foreign labels for
// subtractive planning (third-party conversations are unconstrained by
// this change).
func (s *Store) planPropagation(snap *Snapshot, party string, partner *PartyState, impact *PartnerImpact) error {
	foreign := label.NewSet()
	for l := range partner.alphabet {
		if !l.Involves(party) {
			foreign.Add(l)
		}
	}
	if impact.Classification.Kind.Additive() {
		p, err := core.PlanAdditive(impact.NewView, partner.Public, partner.Table)
		if err != nil {
			return err
		}
		impact.Plans = append(impact.Plans, p)
	}
	if impact.Classification.Kind.Subtractive() {
		view := impact.NewView
		if len(foreign) > 0 {
			view = core.LiftForeign(view, foreign)
		}
		p, err := core.PlanSubtractive(view, partner.Public, partner.Table)
		if err != nil {
			return err
		}
		impact.Plans = append(impact.Plans, p)
	}
	sugg := &core.Suggester{Private: partner.Private, Registry: snap.Registry}
	for _, p := range impact.Plans {
		impact.Suggestions = append(impact.Suggestions, sugg.Suggest(p)...)
	}
	return nil
}

// CommitEvolution publishes an analyzed evolution. It fails with
// ErrConflict when the choreography advanced past evo.BaseVersion —
// the caller re-runs Evolve against the fresh snapshot.
func (s *Store) CommitEvolution(ctx context.Context, evo *Evolution) (*Snapshot, error) {
	snap, _, err := s.CommitEvolutionIdem(ctx, evo, "")
	return snap, err
}

// CommitEvolutionIdem is CommitEvolution with an idempotency key: a
// retry carrying the key of an already-applied commit returns the
// current snapshot and the version that commit published, without
// applying anything (see idem.go). An empty key disables dedup.
func (s *Store) CommitEvolutionIdem(ctx context.Context, evo *Evolution, key string) (*Snapshot, uint64, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, 0, err
	}
	release, err := s.beginMutation()
	if err != nil {
		return nil, 0, err
	}
	defer release()
	e, err := s.entry(evo.Choreography)
	if err != nil {
		return nil, 0, err
	}
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	if key != "" {
		if res, ok := s.IdemSeen(key); ok {
			return e.snap.Load(), res.Version, nil
		}
	}
	cur := e.snap.Load()
	if cur.Version != evo.BaseVersion {
		s.conflicts.Add(1)
		return nil, 0, fmt.Errorf("%w: choreography %q at version %d, evolution based on %d",
			ErrConflict, evo.Choreography, cur.Version, evo.BaseVersion)
	}
	old := cur.parties[evo.Party]
	next := cur.clone()
	next.Version = cur.Version + 1
	next.Registry = evo.Registry
	// Move the committed public onto the choreography's shared
	// interner (on a clone: the caller may still be reading the
	// analyzed evolution concurrently), so the published party state
	// shares the snapshot-wide symbol space. Only committed labels
	// ever enter the shared interner.
	pub := evo.NewPublic.Clone()
	pub.Reintern(next.syms)
	next.parties[evo.Party] = newPartyState(evo.NewPrivate,
		&mapping.Result{Automaton: pub, Table: evo.NewTable}, old.Version+1)
	next.computePairs()
	if err := s.publishIdem(e, next, []*bpel.Process{evo.NewPrivate}, key); err != nil {
		return nil, 0, err
	}
	s.commits.Add(1)
	s.invalidatePairs(e, evo.Party)
	return next, next.Version, nil
}

// ApplyOps applies adaptation operations to a partner's private
// process, re-derives and commits it (steps 4–5 of Secs. 5.2/5.3 —
// explicit, since partner processes are autonomous). A non-zero
// basePartyVersion guards against stale suggestions: the ops carry
// activity paths computed against that version of the partner's
// private process, so the commit fails with ErrConflict when the
// partner has changed since (party versions start at 1; pass 0 to
// skip the check).
func (s *Store) ApplyOps(ctx context.Context, id, partner string, ops []change.Operation, basePartyVersion uint64) (*Snapshot, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("%w: no operations to apply", ErrInvalid)
	}
	release, err := s.beginMutation()
	if err != nil {
		return nil, err
	}
	defer release()
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	cur := e.snap.Load()
	ps, ok := cur.parties[partner]
	if !ok {
		return nil, fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, partner, id)
	}
	if basePartyVersion != 0 && ps.Version != basePartyVersion {
		s.conflicts.Add(1)
		return nil, fmt.Errorf("%w: party %q at version %d, suggestions computed against %d",
			ErrConflict, partner, ps.Version, basePartyVersion)
	}
	p := ps.Private
	for _, op := range ops {
		next, err := op.Apply(p)
		if err != nil {
			return nil, fmt.Errorf("%w: adapting %s with %s: %v", ErrInvalid, partner, op, err)
		}
		p = next
	}
	next, err := s.rebuildAll(ctx, cur, []*bpel.Process{p})
	if err != nil {
		return nil, err
	}
	if err := s.publish(e, next, []*bpel.Process{p}); err != nil {
		return nil, err
	}
	s.commits.Add(1)
	s.invalidatePairs(e, partner)
	return next, nil
}
