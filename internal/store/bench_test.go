package store

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bpel"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/instance"
	"repro/internal/paperrepro"
)

// genStore loads n generated two-party choreographies into a store.
func genStore(b testing.TB, n int, p gen.Params) *Store {
	b.Helper()
	s := New()
	for i := 0; i < n; i++ {
		conv, err := gen.Generate(int64(i+1), p)
		if err != nil {
			b.Fatal(err)
		}
		id := genID(i)
		if err := s.Create(ctx, id, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := s.RegisterParty(ctx, id, conv.A); err != nil {
			b.Fatal(err)
		}
		if _, err := s.RegisterParty(ctx, id, conv.B); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

var benchParams = gen.Params{PartyA: "A", PartyB: "B", Messages: 14, MaxDepth: 3, ChoiceProb: 35, MaxBranch: 3}

// BenchmarkCheckUncached is the baseline: every check recomputes the
// bilateral views, the intersection and annotated emptiness.
func BenchmarkCheckUncached(b *testing.B) {
	s := genStore(b, 8, benchParams)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CheckUncached(ctx, genID(i%8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckCached serves repeated checks from the
// consistency-result cache.
func BenchmarkCheckCached(b *testing.B) {
	s := genStore(b, 8, benchParams)
	for i := 0; i < 8; i++ { // warm
		if _, err := s.Check(ctx, genID(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Check(ctx, genID(i%8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelMixedTraffic drives the serving workload choreod is
// built for: many goroutines issuing mostly checks with occasional
// evolve→commit writes against a pool of choreographies.
func BenchmarkParallelMixedTraffic(b *testing.B) {
	const pool = 16
	s := genStore(b, pool, benchParams)
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			id := genID(int(n) % pool)
			if n%16 == 0 {
				// Write path: analyze and commit a random change.
				snap, err := s.Snapshot(ctx, id)
				if err != nil {
					b.Fatal(err)
				}
				party, _ := snap.Party("A")
				op, err := gen.RandomChange(n, party.Private, snap.Registry)
				if err != nil {
					continue // not every process admits every change
				}
				evo, err := s.Evolve(ctx, id, "A", op)
				if err != nil {
					continue
				}
				_, _ = s.CommitEvolution(ctx, evo) // conflicts are expected
			} else {
				if _, err := s.Check(ctx, id); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkEvolveAnalysis measures one full evolution analysis (the
// paper's Fig. 4 loop) on the procurement scenario.
func BenchmarkEvolveAnalysis(b *testing.B) {
	s := New()
	if err := s.Create(ctx, "p", paperSyncOps); err != nil {
		b.Fatal(err)
	}
	for _, p := range []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	} {
		if _, err := s.RegisterParty(ctx, "p", p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evolve(ctx, "p", paperrepro.Accounting, paperrepro.CancelChange()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestEvents drives the streaming event path end to end —
// batches of observed messages through the lane engine into live
// instance state — crossing batch size with apply workers. The
// events/s metric is the acceptance number for the ingest subsystem.
func BenchmarkIngestEvents(b *testing.B) {
	for _, batch := range []int{1, 64, 1024} {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("batch%d/workers%d", batch, workers), func(b *testing.B) {
				s := New(WithIngestWorkers(workers))
				if err := s.Create(ctx, "p", paperSyncOps); err != nil {
					b.Fatal(err)
				}
				for _, p := range []*bpel.Process{
					paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
				} {
					if _, err := s.RegisterParty(ctx, "p", p); err != nil {
						b.Fatal(err)
					}
				}
				snap, err := s.Snapshot(ctx, "p")
				if err != nil {
					b.Fatal(err)
				}
				// A pool of valid interleaved streams; cycling past the end
				// re-feeds instances, which then deviate — keeping a realistic
				// mix of stepping and deviated instances in long runs.
				var pool []ingest.Event
				for pi, party := range []string{paperrepro.Buyer, paperrepro.Accounting, paperrepro.Logistics} {
					ps, _ := snap.Party(party)
					insts := instance.SampleInstances(ps.Public, int64(pi+1), 256, 10)
					for i := range insts {
						insts[i].ID = fmt.Sprintf("b%d-%d", pi, i)
					}
					pool = append(pool, interleave(party, insts)...)
				}
				if len(pool) < batch {
					b.Fatalf("event pool %d too small for batch %d", len(pool), batch)
				}
				buf := make([]ingest.Event, batch)
				off := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range buf {
						buf[j] = pool[off]
						off = (off + 1) % len(pool)
					}
					if _, err := s.IngestEvents(ctx, "p", buf); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// TestCacheSpeedup pins the acceptance criterion: repeated checks
// through the cache must be at least 5× faster than the uncached
// path. The cached path is a map lookup per pair, so the real factor
// is orders of magnitude larger; 5× keeps the test robust on loaded
// CI hosts.
func TestCacheSpeedup(t *testing.T) {
	s := genStore(t, 4, benchParams)
	const rounds = 40
	// Warm both the view memos and the result cache so the comparison
	// isolates the consistency computation itself.
	for i := 0; i < 4; i++ {
		if _, err := s.Check(ctx, genID(i)); err != nil {
			t.Fatal(err)
		}
	}
	uncachedStart := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := s.CheckUncached(ctx, genID(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	uncached := time.Since(uncachedStart)

	cachedStart := time.Now()
	for i := 0; i < rounds; i++ {
		rep, err := s.Check(ctx, genID(i%4))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rep.Pairs {
			if !p.Cached {
				t.Fatalf("pair %s/%s missed the warm cache", p.A, p.B)
			}
		}
	}
	cached := time.Since(cachedStart)

	if cached <= 0 {
		return // sub-resolution fast: trivially ≥ 5×
	}
	factor := float64(uncached) / float64(cached)
	t.Logf("uncached %v, cached %v → %.1f× speedup", uncached, cached, factor)
	if factor < 5 {
		t.Fatalf("cache speedup %.1f×, want ≥ 5×", factor)
	}
}
