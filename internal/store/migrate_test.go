package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/change"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/migrate"
	"repro/internal/paperrepro"
)

// migrationStore loads the paper scenario, records instances for all
// three parties under the initial schema, then commits the tracking
// limit change — the population a bulk sweep has to partition.
func migrationStore(t *testing.T) (*Store, string) {
	t.Helper()
	s, id := paperStore(t)
	for i, party := range []string{paperrepro.Buyer, paperrepro.Accounting, paperrepro.Logistics} {
		if _, err := s.SampleInstances(ctx, id, party, int64(100+i), 40, 12); err != nil {
			t.Fatal(err)
		}
	}
	evo, err := s.Evolve(ctx, id, paperrepro.Accounting, paperrepro.TrackingLimitChange())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitEvolution(ctx, evo); err != nil {
		t.Fatal(err)
	}
	return s, id
}

type strandedKey struct {
	party, id string
	status    instance.Status
}

// sequentialBaseline classifies every recorded instance one at a time
// through the ad-hoc instance.Check — the per-instance what-if path
// MigrateAll must agree with.
func sequentialBaseline(t *testing.T, s *Store, id string) (migrate.Counts, map[strandedKey]bool) {
	t.Helper()
	snap, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var want migrate.Counts
	stranded := map[strandedKey]bool{}
	for _, party := range snap.Parties() {
		ps, _ := snap.Party(party)
		insts, err := s.Instances(ctx, id, party)
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range insts {
			st, err := instance.Check(inst, ps.Public)
			if err != nil {
				t.Fatal(err)
			}
			want.Total++
			switch st {
			case instance.Migratable:
				want.Migratable++
			case instance.NonReplayable:
				want.NonReplayable++
				stranded[strandedKey{party, inst.ID, st}] = true
			case instance.Unviable:
				want.Unviable++
				stranded[strandedKey{party, inst.ID, st}] = true
			}
		}
	}
	return want, stranded
}

// TestMigrateAllMatchesSequential pins the acceptance criterion: the
// bulk sweep's migratable/stranded partition equals classifying every
// instance sequentially with per-instance what-ifs.
func TestMigrateAllMatchesSequential(t *testing.T) {
	s, id := migrationStore(t)
	want, wantStranded := sequentialBaseline(t, s, id)
	if want.NonReplayable+want.Unviable == 0 {
		t.Fatal("baseline stranded nobody — the subtractive change should strand long trackers")
	}
	if want.Migratable == 0 {
		t.Fatal("baseline migrated nobody")
	}

	job, err := s.MigrateAll(ctx, id, 4)
	if err != nil {
		t.Fatal(err)
	}
	v := job.Snapshot()
	if v.Status != migrate.StatusDone {
		t.Fatalf("status = %v, want done", v.Status)
	}
	if v.Counts != want {
		t.Fatalf("bulk counts = %+v, sequential baseline %+v", v.Counts, want)
	}
	got := job.Stranded()
	if len(got) != len(wantStranded) {
		t.Fatalf("stranded = %d entries, want %d", len(got), len(wantStranded))
	}
	for _, st := range got {
		if !wantStranded[strandedKey{st.Party, st.ID, st.Status}] {
			t.Fatalf("unexpected stranded entry %+v", st)
		}
	}

	// Migratable instances were moved to the target snapshot version,
	// stranded ones stay pinned to the schema they were recorded under
	// — observable through InstanceRecords.
	snap, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	moved, pinned := 0, 0
	for _, party := range snap.Parties() {
		recs, err := s.InstanceRecords(ctx, id, party)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if rec.Schema == v.TargetVersion {
				moved++
			} else {
				pinned++
				if !wantStranded[strandedKey{party, rec.Inst.ID, instance.NonReplayable}] &&
					!wantStranded[strandedKey{party, rec.Inst.ID, instance.Unviable}] {
					t.Fatalf("instance %s/%s pinned to v%d but not stranded", party, rec.Inst.ID, rec.Schema)
				}
			}
		}
	}
	if moved != want.Migratable || pinned != want.NonReplayable+want.Unviable {
		t.Fatalf("schema tags: moved=%d pinned=%d, want %d/%d",
			moved, pinned, want.Migratable, want.NonReplayable+want.Unviable)
	}
}

// TestMigrateAllRerunNoop: the job identity is (choreography, version),
// so starting the same migration again returns the finished job as-is.
func TestMigrateAllRerunNoop(t *testing.T) {
	s, id := migrationStore(t)
	job1, err := s.MigrateAll(ctx, id, 2)
	if err != nil {
		t.Fatal(err)
	}
	first := job1.Snapshot()
	job2, err := s.MigrateAll(ctx, id, 8)
	if err != nil {
		t.Fatal(err)
	}
	if job1 != job2 {
		t.Fatalf("rerun created a new job %q, want the completed %q", job2.ID, job1.ID)
	}
	if second := job2.Snapshot(); second != first {
		t.Fatalf("rerun changed the job: %+v -> %+v", first, second)
	}
	// The async variant joins the same job too.
	job3, err := s.StartMigration(ctx, id, 2)
	if err != nil {
		t.Fatal(err)
	}
	if job3 != job1 {
		t.Fatal("StartMigration minted a fresh job for a completed migration")
	}
}

// TestMigrateAllCancelResume: a canceled sweep keeps only whole
// committed shards and the next call finishes the rest; the final
// report equals the sequential baseline.
func TestMigrateAllCancelResume(t *testing.T) {
	s, id := migrationStore(t)
	want, _ := sequentialBaseline(t, s, id)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	job, err := s.MigrateAll(canceled, id, 4)
	if err == nil {
		t.Fatal("MigrateAll under a canceled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if v := job.Snapshot(); v.Status != migrate.StatusCanceled {
		t.Fatalf("status = %v, want canceled", v.Status)
	}

	resumed, err := s.MigrateAll(ctx, id, 4)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != job {
		t.Fatal("resume minted a fresh job instead of continuing the canceled one")
	}
	if v := resumed.Snapshot(); v.Status != migrate.StatusDone || v.Counts != want {
		t.Fatalf("after resume: %+v, want done with %+v", v, want)
	}
}

// TestMigrateAllStableUnderConcurrentEvolves: evolves and commits on
// other choreographies must not perturb a sweep's stranded report
// (run with -race in CI).
func TestMigrateAllStableUnderConcurrentEvolves(t *testing.T) {
	s, id := migrationStore(t)
	want, wantStranded := sequentialBaseline(t, s, id)

	// An unrelated churning choreography in the same store.
	conv, err := gen.Generate(1, gen.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const noisy = "noisy"
	if err := s.Create(ctx, noisy, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterParty(ctx, noisy, conv.A); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterParty(ctx, noisy, conv.B); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evo, err := s.Evolve(ctx, noisy, conv.A.Owner, change.Replace{Path: nil, New: conv.A.Body})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := s.CommitEvolution(ctx, evo); err != nil && !errors.Is(err, ErrConflict) {
				t.Error(err)
				return
			}
		}
	}()

	job, err := s.MigrateAll(ctx, id, 4)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v := job.Snapshot(); v.Counts != want {
		t.Fatalf("counts under churn = %+v, want %+v", v.Counts, want)
	}
	for _, st := range job.Stranded() {
		if !wantStranded[strandedKey{st.Party, st.ID, st.Status}] {
			t.Fatalf("unexpected stranded entry under churn: %+v", st)
		}
	}
}

// dropMigrationJob removes a job from the registry so benchmarks can
// force a fresh sweep of an identical population.
func (s *Store) dropMigrationJob(jobID string) {
	s.migMu.Lock()
	delete(s.migs, jobID)
	for i, got := range s.migOrder {
		if got == jobID {
			s.migOrder = append(s.migOrder[:i], s.migOrder[i+1:]...)
			break
		}
	}
	s.migMu.Unlock()
}

// BenchmarkMigrateAll sweeps a 10k-instance population; the sub-
// benchmarks vary the worker count, and on multi-core hardware the
// sweep time shrinks accordingly (the per-shard work is lock-free
// classification against shared immutable checkers).
func BenchmarkMigrateAll(b *testing.B) {
	s := genStore(b, 1, benchParams)
	id := genID(0)
	snap, err := s.Snapshot(ctx, id)
	if err != nil {
		b.Fatal(err)
	}
	for i, party := range snap.Parties() {
		if _, err := s.SampleInstances(ctx, id, party, int64(i+1), 5000, 40); err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				job, err := s.MigrateAll(ctx, id, workers)
				if err != nil {
					b.Fatal(err)
				}
				if v := job.Snapshot(); v.Total != 10000 {
					b.Fatalf("swept %d instances, want 10000", v.Total)
				}
				b.StopTimer()
				s.dropMigrationJob(job.ID)
				b.StartTimer()
			}
		})
	}
}

// TestCommitNeverDowngradesSchema: a slow sweep targeting an older
// snapshot must not move records backward past the version a newer
// sweep (or a post-commit recording) already tagged them with.
func TestCommitNeverDowngradesSchema(t *testing.T) {
	s, id := migrationStore(t)
	if _, err := s.MigrateAll(ctx, id, 2); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.entry(id)
	if err != nil {
		t.Fatal(err)
	}
	// A stale source, as held by a sweep started before the last
	// commit, re-commits every instance of every shard.
	stale := &instanceSource{st: s, e: e, target: snap.Version - 1}
	for shard := 0; shard < stale.Shards(); shard++ {
		items, err := stale.Load(ctx, shard)
		if err != nil {
			t.Fatal(err)
		}
		if err := stale.Commit(ctx, shard, items); err != nil {
			t.Fatal(err)
		}
	}
	moved := 0
	for _, party := range snap.Parties() {
		recs, err := s.InstanceRecords(ctx, id, party)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if rec.Schema == snap.Version {
				moved++
			}
		}
	}
	if want := s.migs[migrationJobID(id, snap.Version)].Snapshot().Migratable; moved != want {
		t.Fatalf("stale commit downgraded tags: %d at current version, want %d", moved, want)
	}
}

// blockingSource parks every Load until released — a sweep that stays
// genuinely running for as long as a test needs it to.
type blockingSource struct{ release chan struct{} }

func (b blockingSource) Shards() int { return 1 }

func (b blockingSource) Load(ctx context.Context, shard int) ([]migrate.Item, error) {
	select {
	case <-b.release:
		return nil, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b blockingSource) Commit(context.Context, int, []migrate.Item) error { return nil }

// TestRetentionNeverEvictsRunningJobs is the regression test for the
// migration-job retention bound: with the job table far past
// maxMigrationJobs, eviction must drop only terminal jobs — a job
// whose sweep is still in flight stays, even when it is the oldest
// entry in the table.
func TestRetentionNeverEvictsRunningJobs(t *testing.T) {
	s := New()
	release := make(chan struct{})
	classify := func(string, instance.Instance) (instance.Status, error) {
		return instance.Migratable, nil
	}
	eng := &migrate.Engine{Workers: 1}
	var running []*migrate.Job
	// The running jobs are the OLDEST entries: eviction walks the
	// table in creation order, so any bug that drops the oldest job
	// unconditionally hits them first.
	for i := 0; i < 5; i++ {
		job := migrate.NewJob(fmt.Sprintf("mig-run-%d", i), "c", 1, 1)
		eng.RunAsync(job, blockingSource{release: release}, classify)
		s.migs[job.ID] = job
		s.migOrder = append(s.migOrder, job.ID)
		running = append(running, job)
	}
	for i := 0; i < 2*maxMigrationJobs; i++ {
		job := migrate.RestoreJob(migrate.JobState{
			ID: fmt.Sprintf("mig-done-%03d", i), Choreography: "c",
			Status: migrate.StatusCanceled, Done: make([]bool, 1),
		})
		s.migs[job.ID] = job
		s.migOrder = append(s.migOrder, job.ID)
	}
	s.migMu.Lock()
	s.evictMigrationJobsLocked()
	kept := len(s.migOrder)
	s.migMu.Unlock()
	if kept != maxMigrationJobs {
		t.Fatalf("retained %d jobs, want %d", kept, maxMigrationJobs)
	}
	s.migMu.Lock()
	for _, job := range running {
		if _, ok := s.migs[job.ID]; !ok {
			t.Errorf("running job %s was evicted", job.ID)
		}
	}
	s.migMu.Unlock()
	close(release)
	for _, job := range running {
		if v, err := job.Wait(ctx); err != nil || v.Status != migrate.StatusDone {
			t.Fatalf("job %s did not finish cleanly: %v %v", job.ID, v.Status, err)
		}
	}
}

// TestRetentionKeepsEverythingWhenAllRunning pins the overflow
// behavior when nothing is evictable: the bound yields rather than
// dropping live jobs.
func TestRetentionKeepsEverythingWhenAllRunning(t *testing.T) {
	s := New()
	n := maxMigrationJobs + 10
	for i := 0; i < n; i++ {
		// A fresh job is StatusRunning until its first sweep settles —
		// not terminal, therefore not evictable.
		job := migrate.NewJob(fmt.Sprintf("mig-%03d", i), "c", 1, 1)
		s.migs[job.ID] = job
		s.migOrder = append(s.migOrder, job.ID)
	}
	s.migMu.Lock()
	s.evictMigrationJobsLocked()
	kept := len(s.migOrder)
	s.migMu.Unlock()
	if kept != n {
		t.Fatalf("evicted non-terminal jobs: retained %d, want %d", kept, n)
	}
}
