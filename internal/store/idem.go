package store

// Commit idempotency. A client that lost the response to a commit
// cannot tell "applied" from "never arrived", so blind retries of a
// version-bumping mutation risk double-applying it. The store keeps a
// bounded dedup window of idempotency keys: a keyed commit journals a
// recIdem record alongside its commit record, and a retry carrying
// the same key returns the recorded outcome instead of re-applying.
// The window is a FIFO over the last idemWindow keys — eviction is
// insertion-ordered (never clock- or map-order-driven) so replaying
// the WAL rebuilds the identical window.
//
// Exactly-once does not hinge on the window alone: the idem record is
// appended after the commit record, so a crash between the two leaves
// the commit durable but the key unknown. A retry then fails the
// BaseVersion check under the commit lock with ErrConflict — a safe,
// visible outcome — rather than applying twice. The window upgrades
// that retry from a conflict to an idempotent success.

// IdemResult is the recorded outcome of an applied keyed commit.
type IdemResult struct {
	// ID is the choreography the commit applied to; Version is the
	// snapshot version it published.
	ID      string
	Version uint64
}

// idemWindow bounds the dedup window; older keys are evicted FIFO.
const idemWindow = 4096

// IdemSeen reports whether an idempotency key is inside the dedup
// window, with the outcome recorded for it.
func (s *Store) IdemSeen(key string) (IdemResult, bool) {
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	res, ok := s.idem[key]
	return res, ok
}

// idemRecord enters one key into the window, evicting FIFO past
// idemWindow. Duplicate keys keep their original slot and outcome.
func (s *Store) idemRecord(key string, res IdemResult) {
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	if _, dup := s.idem[key]; dup {
		return
	}
	s.idem[key] = res
	s.idemOrder = append(s.idemOrder, key)
	for len(s.idemOrder) > idemWindow {
		delete(s.idem, s.idemOrder[0])
		s.idemOrder = s.idemOrder[1:]
	}
}
