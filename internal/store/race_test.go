package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/change"
	"repro/internal/paperrepro"
)

// Concurrency tests: meant to run under -race. They exercise parallel
// check/evolve/read on the *same* choreography, proving snapshot
// isolation (readers never see a torn state) and cache correctness
// (cached answers always match a fresh recomputation).

func TestConcurrentCheckEvolveRead(t *testing.T) {
	s, id := paperStore(t)
	const (
		readers = 4
		writers = 2
		rounds  = 12
	)
	var readerWG, writerWG sync.WaitGroup
	stop := make(chan struct{})
	var fail atomic.Value // first error message

	record := func(msg string) { fail.CompareAndSwap(nil, msg) }

	// Readers: hammer Check and snapshot reads while writers commit.
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep, err := s.Check(ctx, id)
				if err != nil {
					record("check: " + err.Error())
					return
				}
				// A report must always cover both interacting pairs of
				// the scenario, whatever version it observed.
				if len(rep.Pairs) != 2 {
					record("torn check report")
					return
				}
				snap, err := s.Snapshot(ctx, id)
				if err != nil {
					record("snapshot: " + err.Error())
					return
				}
				if snap.NumParties() != 3 {
					record("torn snapshot")
					return
				}
				for _, name := range snap.Parties() {
					if _, err := s.View(ctx, id, name, "B"); err != nil {
						record("view: " + err.Error())
						return
					}
				}
			}
		}()
	}

	// Writers: alternate the accounting process between its original
	// form and the cancel variant via evolve→commit, retrying on
	// conflict (the optimistic-concurrency loop a real client runs).
	var commits atomic.Uint64
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed int) {
			defer writerWG.Done()
			for i := 0; i < rounds; i++ {
				snap, err := s.Snapshot(ctx, id)
				if err != nil {
					record(err.Error())
					return
				}
				// Toggle: odd rounds restore the original process,
				// even rounds introduce the cancel option.
				if (i+seed)%2 != 0 {
					if _, err := s.UpdateParty(ctx, id, paperrepro.AccountingProcess(), nil); err != nil {
						record(err.Error())
						return
					}
					commits.Add(1)
					continue
				}
				evo, err := s.evolveSnapshot(ctx, snap, paperrepro.Accounting, []change.Operation{paperrepro.CancelChange()})
				if err != nil {
					// The cancel change only applies to the original
					// process shape; a concurrent writer may have
					// switched it already. That is expected contention,
					// not a bug.
					continue
				}
				if _, err := s.CommitEvolution(ctx, evo); err != nil {
					if errors.Is(err, ErrConflict) {
						continue
					}
					record("commit: " + err.Error())
					return
				}
				commits.Add(1)
			}
		}(w)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if commits.Load() == 0 {
		t.Fatal("no writer ever committed")
	}
	// Cached results must agree with fresh recomputation at the end.
	cached, err := s.Check(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.CheckUncached(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cached.Pairs {
		if cached.Pairs[i].Consistent != fresh.Pairs[i].Consistent {
			t.Fatalf("cache poisoned: pair %s/%s cached=%v fresh=%v",
				cached.Pairs[i].A, cached.Pairs[i].B,
				cached.Pairs[i].Consistent, fresh.Pairs[i].Consistent)
		}
	}
}

// Parallel evolutions on one snapshot version: exactly one commit wins,
// every other one conflicts, and the loser's analysis is still usable
// for a retry.
func TestConcurrentCommitSingleWinner(t *testing.T) {
	s, id := paperStore(t)
	const contenders = 8
	evos := make([]*Evolution, contenders)
	var wg sync.WaitGroup
	for i := range evos {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			evo, err := s.Evolve(ctx, id, paperrepro.Accounting, paperrepro.OrderTwoChange())
			if err != nil {
				t.Error(err)
				return
			}
			evos[i] = evo
		}(i)
	}
	wg.Wait()
	var wins, conflicts atomic.Uint64
	for i := range evos {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.CommitEvolution(ctx, evos[i])
			switch {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrConflict):
				conflicts.Add(1)
			default:
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if wins.Load() != 1 || conflicts.Load() != contenders-1 {
		t.Fatalf("wins = %d, conflicts = %d, want 1/%d", wins.Load(), conflicts.Load(), contenders-1)
	}
}

// Concurrent instance recording and migration on disjoint parties.
func TestConcurrentInstances(t *testing.T) {
	s, id := paperStore(t)
	var wg sync.WaitGroup
	for _, party := range []string{paperrepro.Buyer, paperrepro.Accounting, paperrepro.Logistics} {
		wg.Add(1)
		go func(party string) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := s.SampleInstances(ctx, id, party, int64(i), 10, 6); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Migrate(ctx, id, party, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(party)
	}
	wg.Wait()
	insts, err := s.Instances(ctx, id, paperrepro.Buyer)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 50 {
		t.Fatalf("buyer instances = %d, want 50", len(insts))
	}
}
