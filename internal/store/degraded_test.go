package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bpel"
	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/instance"
	"repro/internal/paperrepro"
)

// poisonJournal arms the fault pair that turns the next WAL append
// into an unrecoverable failure: the write tears AND its rollback
// truncate fails, which poisons the journal and degrades the store.
func poisonJournal(t *testing.T) {
	t.Helper()
	for _, name := range []string{fault.PointJournalAppendWrite, fault.PointJournalWALTruncate} {
		if err := fault.Arm(name, fault.Trigger{}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(fault.DisarmAll)
}

// TestDegradedReadOnlyMode pins the degraded-mode contract end to
// end: an unrecoverable journal write flips the store read-only,
// reads keep serving the last committed state, every mutation fails
// with ErrDegraded, stats report the failure — and a restart recovers
// the full acked state.
func TestDegradedReadOnlyMode(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(WithJournal(dir), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	seedPaperScenario(t, s)
	preSnap, err := s.Snapshot(ctx, "procurement")
	if err != nil {
		t.Fatal(err)
	}

	poisonJournal(t)
	if err := s.Create(ctx, "doomed", nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("mutation on poisoned journal = %v, want ErrDegraded", err)
	}
	fault.DisarmAll()

	if s.Degraded() == nil {
		t.Fatal("Degraded() = nil after unrecoverable append")
	}
	st := s.Stats()
	if !st.Degraded || st.LastError == "" {
		t.Fatalf("stats = degraded:%v lastError:%q, want degraded with error", st.Degraded, st.LastError)
	}

	// Reads still serve the last committed state.
	snap, err := s.Snapshot(ctx, "procurement")
	if err != nil {
		t.Fatalf("read in degraded mode: %v", err)
	}
	if snap.Version != preSnap.Version {
		t.Fatalf("degraded read sees version %d, want %d", snap.Version, preSnap.Version)
	}
	if _, err := s.Check(ctx, "procurement"); err != nil {
		t.Fatalf("degraded Check: %v", err)
	}
	if _, err := s.InstanceRecords(ctx, "procurement", paperrepro.Buyer); err != nil {
		t.Fatalf("degraded InstanceRecords: %v", err)
	}

	// Every mutation fails with ErrDegraded, even with faults cleared —
	// degradation is one-way for the process lifetime.
	mutations := map[string]error{
		"Create": s.Create(ctx, "x", nil),
		"Delete": s.Delete(ctx, "procurement"),
		"AddInstances": s.AddInstances(ctx, "procurement", paperrepro.Buyer,
			[]instance.Instance{{ID: "i1"}}),
	}
	if _, err := s.PutParties(ctx, "procurement", nil, nil); err != nil {
		mutations["PutParties"] = err
	}
	if _, err := s.RegisterParty(ctx, "procurement", paperrepro.BuyerProcess()); err != nil {
		mutations["RegisterParty"] = err
	}
	if _, err := s.SampleInstances(ctx, "procurement", paperrepro.Buyer, 1, 1, 4); err != nil {
		mutations["SampleInstances"] = err
	}
	if _, err := s.IngestEvents(ctx, "procurement", []ingest.Event{{Party: paperrepro.Buyer, Instance: "i", Label: "B#A#orderOp"}}); err != nil {
		mutations["IngestEvents"] = err
	}
	if _, _, err := s.CommitEvolutionIdem(ctx, &Evolution{}, ""); err != nil {
		mutations["CommitEvolution"] = err
	}
	if _, err := s.ApplyOps(ctx, "procurement", paperrepro.Buyer, nil, 0); err != nil {
		mutations["ApplyOps"] = err
	}
	if _, err := s.MigrateAll(ctx, "procurement", 2); err != nil {
		mutations["MigrateAll"] = err
	}
	if _, err := s.StartMigration(ctx, "procurement", 2); err != nil {
		mutations["StartMigration"] = err
	}
	if _, err := s.Checkpoint(ctx); err != nil {
		mutations["Checkpoint"] = err
	}
	for name, err := range mutations {
		if !errors.Is(err, ErrDegraded) {
			// PutParties and ApplyOps validate input before the gate.
			if (name == "PutParties" || name == "ApplyOps") && errors.Is(err, ErrInvalid) {
				continue
			}
			t.Errorf("%s in degraded mode = %v, want ErrDegraded", name, err)
		}
	}

	// A restart is the recovery path: the journal's torn tail is cut
	// and the recovered store matches the degraded store's in-memory
	// state — nothing acked was lost, nothing unacked leaked in.
	s.Close()
	recovered, err := Open(WithJournal(dir), WithShards(4))
	if err != nil {
		t.Fatalf("recovery after degrade: %v", err)
	}
	defer recovered.Close()
	if recovered.Degraded() != nil {
		t.Fatal("recovered store still degraded")
	}
	assertStoresEqual(t, s, recovered)
	if err := recovered.Create(ctx, "fresh", nil); err != nil {
		t.Fatalf("mutation after recovery: %v", err)
	}
}

// TestCleanAppendFailureDoesNotDegrade pins the boundary: a failed
// append whose rollback succeeds is an ordinary mutation failure —
// the store stays writable.
func TestCleanAppendFailureDoesNotDegrade(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := fault.Arm(fault.PointJournalAppendWrite, fault.Trigger{Nth: 1}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.DisarmAll)
	if err := s.Create(ctx, "a", nil); err == nil || errors.Is(err, ErrDegraded) {
		t.Fatalf("clean append failure = %v, want a non-degraded error", err)
	}
	if s.Degraded() != nil {
		t.Fatal("store degraded after a rolled-back append")
	}
	if err := s.Create(ctx, "a", nil); err != nil {
		t.Fatalf("mutation after clean failure: %v", err)
	}
}

// TestCommitEvolutionIdempotent pins the exactly-once contract: a
// retried commit carrying the same idempotency key returns the
// recorded outcome and never double-applies — across a restart too.
func TestCommitEvolutionIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Create(ctx, "procurement", paperSyncOps); err != nil {
		t.Fatal(err)
	}
	procs := []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	}
	if _, err := s.PutParties(ctx, "procurement", procs, nil); err != nil {
		t.Fatal(err)
	}
	evo, err := s.Evolve(ctx, "procurement", paperrepro.Accounting, paperrepro.TrackingLimitChange())
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats().Commits

	snap1, v1, err := s.CommitEvolutionIdem(ctx, evo, "commit-1")
	if err != nil {
		t.Fatal(err)
	}
	if v1 != snap1.Version {
		t.Fatalf("returned version %d, snapshot at %d", v1, snap1.Version)
	}
	// The retry: same evolution, same key. Applies nothing.
	snap2, v2, err := s.CommitEvolutionIdem(ctx, evo, "commit-1")
	if err != nil {
		t.Fatalf("idempotent retry: %v", err)
	}
	if v2 != v1 || snap2.Version != snap1.Version {
		t.Fatalf("retry returned v%d (snap v%d), want v%d (no double apply)", v2, snap2.Version, v1)
	}
	if got := s.Stats().Commits - before; got != 1 {
		t.Fatalf("commit counter advanced %d times, want 1", got)
	}
	// A blind keyless retry hits the version check instead.
	if _, err := s.CommitEvolution(ctx, evo); !errors.Is(err, ErrConflict) {
		t.Fatalf("keyless replay = %v, want ErrConflict", err)
	}

	// The dedup window is journaled: a restarted server still
	// recognizes the key.
	s.Close()
	r, err := Open(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, ok := r.IdemSeen("commit-1")
	if !ok || res.Version != v1 || res.ID != "procurement" {
		t.Fatalf("recovered window: %+v, %v; want commit-1 → v%d", res, ok, v1)
	}
	rsnap, rv, err := r.CommitEvolutionIdem(ctx, evo, "commit-1")
	if err != nil || rv != v1 || rsnap.Version != v1 {
		t.Fatalf("post-recovery retry = v%d (snap v%d), %v; want v%d", rv, rsnap.Version, err, v1)
	}
	assertStoresEqual(t, s, r)
}

// TestIdemWindowEvictsFIFO pins the window bound and its
// deterministic insertion-order eviction.
func TestIdemWindowEvictsFIFO(t *testing.T) {
	s := New()
	for i := 0; i < idemWindow+5; i++ {
		s.idemRecord(fmt.Sprintf("k%d", i), IdemResult{Version: uint64(i)})
	}
	if len(s.idem) != idemWindow || len(s.idemOrder) != idemWindow {
		t.Fatalf("window size %d/%d, want %d", len(s.idem), len(s.idemOrder), idemWindow)
	}
	if _, ok := s.IdemSeen("k4"); ok {
		t.Fatal("oldest key survived past the window")
	}
	if _, ok := s.IdemSeen("k5"); !ok {
		t.Fatal("in-window key evicted")
	}
	s.idemRecord("k5", IdemResult{Version: 999})
	if res, _ := s.IdemSeen("k5"); res.Version != 5 {
		t.Fatalf("duplicate insert overwrote outcome: %+v", res)
	}
}

// TestCloseDrainsBackgroundWork closes a journaled store while ingest
// submissions and migration sweeps are in full flight; run under
// -race this pins the drain ordering — background appenders must be
// quiet before the journal closes underneath them.
func TestCloseDrainsBackgroundWork(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(WithJournal(dir), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	seedPaperScenario(t, s)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				evs := []ingest.Event{{
					Party:    paperrepro.Buyer,
					Instance: fmt.Sprintf("bg-%d-%d", w, i),
					Label:    "B#A#orderOp",
				}}
				if _, err := s.IngestEvents(ctx, "procurement", evs); err != nil {
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := s.StartMigration(ctx, "procurement", 2); err != nil {
				return
			}
		}
	}()

	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("Close mid-soak: %v", err)
	}
	wg.Wait()
	if err := s.Create(ctx, "late", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutation after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	r, err := Open(WithJournal(dir), WithShards(4))
	if err != nil {
		t.Fatalf("recovery after mid-soak close: %v", err)
	}
	defer r.Close()
	assertStoresEqual(t, s, r)
}
