package store

// Streaming event ingestion: the glue between the internal/ingest
// engine and the instance shards. Events advance per-instance live
// state (an afsa.Stepper replay state plus deviation point) as they
// arrive, instead of the store replaying whole traces on demand, and
// migrate compliant instances online to the current schema as their
// next event lands.
//
// Apply protocol. Each lane batch is applied by exactly one engine
// worker under the same discipline recordInstances uses — the
// per-entry instance-append lock, then persistMu.RLock, then the
// instance-shard lock — in three phases: simulate (compute every
// per-instance outcome without mutating), append one recEvents WAL
// record carrying the *decided facts* (event labels, instance
// creations with their schema tags, online-migration tag advances),
// then commit the mutations. A failed append applies nothing. Because
// the decisions are journaled as facts, replay never re-runs them —
// which keeps recovery deterministic even though a concurrent commit
// record can land on either side of the event record in the WAL.
//
// Live state is derived data: it is not journaled and not
// checkpointed. Whenever a record's live state is missing or belongs
// to an older party version (after recovery, or after a schema
// commit), it is rebuilt by replaying the record's full trace against
// the party's current memoized compliance checker — once per schema
// change per instance, not per event.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/afsa"
	"repro/internal/ingest"
	"repro/internal/instance"
	"repro/internal/label"
)

// symUnknown marks a label the choreography's interner has never seen:
// no party automaton can carry it on an edge, so it deviates without
// stepping.
const symUnknown = label.Symbol(-1)

// instLive is one record's streaming runtime state, valid against one
// party version. Values are immutable once published on a record.
type instLive struct {
	// pv is the PartyState.Version the checker (and state) belong to.
	pv  uint64
	chk *instance.Checker
	// state is the replay state after the whole trace; afsa.None once
	// the trace deviated.
	state afsa.StateID
	// dev is the 0-based trace index of the first deviating message,
	// -1 while the trace replays.
	dev int
}

// status classifies the live state through its checker.
func (lv *instLive) status() instance.Status {
	if lv.dev >= 0 {
		return instance.NonReplayable
	}
	return lv.chk.StatusAt(lv.state)
}

// rebuildLive replays a full trace against chk, recording the first
// deviation point.
func rebuildLive(chk *instance.Checker, pv uint64, trace []label.Label) instLive {
	lv := instLive{pv: pv, chk: chk, state: chk.Start(), dev: -1}
	for i, l := range trace {
		lv.state = chk.Step(lv.state, l)
		if lv.state == afsa.None {
			lv.dev = i
			break
		}
	}
	return lv
}

// defaultIngestWorkers is the per-choreography apply concurrency
// unless WithIngestWorkers overrides it.
const defaultIngestWorkers = 4

// WithIngestWorkers sets the per-choreography ingest apply concurrency
// (n <= 0 keeps the default).
func WithIngestWorkers(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.ingestWorkers = n
		}
	}
}

// WithIngestQueueCap bounds each ingest lane's queue to n events
// (n <= 0 keeps the engine default); submissions beyond the bound are
// rejected with backpressure.
func WithIngestQueueCap(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.ingestQueueCap = n
		}
	}
}

// ingestEngine returns e's lazily created event engine. Lanes equal
// the instance-shard fan-out with the identical hash, so one lane
// batch always lands in exactly one instance shard.
func (s *Store) ingestEngine(e *entry) *ingest.Engine {
	e.ingMu.Lock()
	defer e.ingMu.Unlock()
	if e.ing == nil {
		workers := s.ingestWorkers
		if workers <= 0 {
			workers = defaultIngestWorkers
		}
		e.ing = ingest.New(ingest.Config{
			Lanes:    instShardCount,
			Workers:  workers,
			QueueCap: s.ingestQueueCap,
		}, func(lane int, evs []ingest.Event) error {
			return s.applyIngest(e, lane, evs)
		})
	}
	return e.ing
}

// closeIngest shuts e's engine down (idempotent, nil-safe).
func (e *entry) closeIngest() {
	e.ingMu.Lock()
	ing := e.ing
	e.ingMu.Unlock()
	if ing != nil {
		ing.Close()
	}
}

// IngestEvents feeds one batch of observed conversation messages into
// the choreography's streaming event path and blocks until every event
// is applied (and, on a durable store, journaled): per-instance live
// state advances, unknown instances start being tracked at the current
// schema, and instances at a compliant point whose schema tag trails
// the current snapshot migrate online. Events of one instance are
// applied in submission order; instances hashing to different lanes
// proceed in parallel.
//
// Overload is explicit: when a lane's bounded queue cannot take the
// batch, nothing is enqueued and the error wraps
// ingest.ErrBackpressure with a retry-after hint
// (*ingest.BackpressureError) — the caller should back off and retry
// the whole batch. It returns the number of events applied (always
// len(events) on success).
func (s *Store) IngestEvents(ctx context.Context, id string, events []ingest.Event) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("%w: empty event batch", ErrInvalid)
	}
	release, err := s.beginMutation()
	if err != nil {
		return 0, err
	}
	defer release()
	e, err := s.entry(id)
	if err != nil {
		return 0, err
	}
	snap := e.snap.Load()
	for _, ev := range events {
		if ev.Party == "" || ev.Instance == "" || ev.Label == "" {
			return 0, fmt.Errorf("%w: events need party, instance and label", ErrInvalid)
		}
		// Parties are never removed from a choreography, so validating
		// against the current snapshot holds at apply time too.
		if _, ok := snap.parties[ev.Party]; !ok {
			return 0, fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, ev.Party, id)
		}
	}
	if err := s.ingestEngine(e).Submit(ctx, events); err != nil {
		if errors.Is(err, ingest.ErrBackpressure) {
			s.ingestRejected.Add(uint64(len(events)))
		}
		return 0, err
	}
	s.eventsIngested.Add(uint64(len(events)))
	return len(events), nil
}

// pendingInst is one instance's simulated outcome within one lane
// batch — nothing on the record changes until the WAL append succeeds.
type pendingInst struct {
	rec    *instRecord // nil when this batch creates the instance
	party  string
	id     string
	schema uint64 // creation tag, or the record's tag at batch start
	live   instLive
	added  []label.Label
	tagTo  uint64 // online-migration advance decided this batch (0 = none)
}

// advance steps one event through the pending instance's simulated
// replay: step the checker (an unknown symbol or a missing transition
// pins the deviation at pos), then decide an online-migration tag
// advance — the instance is at a compliant point under the current
// schema and its tag trails it (tags never downgrade; the advance is
// journaled as a fact by the caller).
//
// This runs once per event under the shard lock; allocgate proves it
// allocation-free.
//
//choreolint:allocfree
func (p *pendingInst) advance(sym label.Symbol, pos int, snapVersion uint64) {
	if p.live.dev < 0 {
		q := afsa.None
		if sym != symUnknown {
			q = p.live.chk.StepSym(p.live.state, sym)
		}
		if q == afsa.None {
			p.live.dev = pos
			p.live.state = afsa.None
		} else {
			p.live.state = q
		}
	}
	if p.schema < snapVersion && p.live.status() == instance.Migratable {
		p.tagTo = snapVersion
		p.schema = snapVersion
	}
}

// applyIngest applies one lane batch to its instance shard; it runs on
// an engine worker, at most once concurrently per shard. See the file
// comment for the three-phase protocol.
func (s *Store) applyIngest(e *entry, shard int, evs []ingest.Event) error {
	snap := e.snap.Load()
	// Prefetch the per-party checkers before taking any lock: the
	// first batch after a commit pays the determinization here, not
	// inside the shard critical section.
	chks := map[string]*instance.Checker{}
	for _, ev := range evs {
		if _, ok := chks[ev.Party]; ok {
			continue
		}
		ps, ok := snap.parties[ev.Party]
		if !ok {
			return fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, ev.Party, e.id)
		}
		chk, err := ps.complianceChecker()
		if err != nil {
			return err
		}
		chks[ev.Party] = chk
	}
	// Resolve each distinct label to its shared-interner symbol once
	// per batch; unknown labels (symUnknown) deviate without stepping.
	syms := map[label.Label]label.Symbol{}
	for _, ev := range evs {
		if _, ok := syms[ev.Label]; ok {
			continue
		}
		if sym, ok := snap.syms.Lookup(ev.Label); ok {
			syms[ev.Label] = sym
		} else {
			syms[ev.Label] = symUnknown
		}
	}

	// Lock discipline of recordInstances: instance-append lock, then
	// the persist read lock, then the shard lock — WAL order equals
	// shard-slice append order, interleaved correctly with
	// AddInstances.
	if s.jnl != nil {
		e.instAppendMu.Lock()
		defer e.instAppendMu.Unlock()
		s.persistMu.RLock()
		defer s.persistMu.RUnlock()
	}
	sh := &e.inst[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()

	// Phase 1: simulate.
	pend := map[string]*pendingInst{}
	var order []*pendingInst
	for _, ev := range evs {
		k := instIdxKey(ev.Party, ev.Instance)
		p := pend[k]
		if p == nil {
			ps := snap.parties[ev.Party]
			chk := chks[ev.Party]
			if rec := sh.idx[k]; rec != nil {
				p = &pendingInst{rec: rec, party: ev.Party, id: ev.Instance, schema: rec.schema}
				if rec.live != nil && rec.live.pv == ps.Version {
					p.live = *rec.live
				} else {
					p.live = rebuildLive(chk, ps.Version, rec.inst.Trace)
				}
			} else {
				p = &pendingInst{
					party: ev.Party, id: ev.Instance, schema: snap.Version,
					live: instLive{pv: ps.Version, chk: chk, state: chk.Start(), dev: -1},
				}
			}
			pend[k] = p
			order = append(order, p)
		}
		pos := len(p.added)
		if p.rec != nil {
			pos += len(p.rec.inst.Trace)
		}
		p.added = append(p.added, ev.Label)
		p.advance(syms[ev.Label], pos, snap.Version)
	}

	// Phase 2: journal the batch with its decided facts.
	rec := recEvents{ID: e.id, Shard: shard, Events: make([]recEvent, 0, len(evs))}
	for _, ev := range evs {
		rec.Events = append(rec.Events, recEvent{Party: ev.Party, Inst: ev.Instance, Label: ev.Label})
	}
	for _, p := range order {
		switch {
		case p.rec == nil:
			rec.Created = append(rec.Created, recEvtCreate{Party: p.party, Inst: p.id, Schema: p.schema})
		case p.tagTo > 0:
			rec.Target = snap.Version
			rec.Tags = append(rec.Tags, tagRef{Party: p.party, Ref: p.rec.ref})
		}
	}
	if err := s.appendWAL(&walRecord{Events: &rec}); err != nil {
		return err
	}

	// Phase 3: commit.
	for _, p := range order {
		r := p.rec
		if r == nil {
			r = &instRecord{inst: instance.Instance{ID: p.id}, schema: p.schema}
			sh.appendLocked(p.party, r)
		}
		r.inst.Trace = append(r.inst.Trace, p.added...)
		if p.tagTo > r.schema {
			r.schema = p.tagTo
			s.onlineMigrations.Add(1)
		}
		lv := p.live
		r.live = &lv
	}
	return nil
}

// InstanceState is one tracked instance's streaming runtime state, as
// classified against the party's current public process.
type InstanceState struct {
	Party string
	ID    string
	// TracePos is the number of messages observed so far.
	TracePos int
	// Schema is the choreography snapshot version the instance
	// currently complies with (never downgraded).
	Schema uint64
	// Status is the compliance classification against the party's
	// current public process.
	Status instance.Status
	// Deviation is the 0-based trace index of the first message the
	// current public process cannot replay, -1 while compliant.
	Deviation int
}

// InstanceStates returns the streaming runtime state of every tracked
// instance of a party (shard order). Records whose live state is
// missing or stale — recorded by AddInstances, or not touched since
// the last schema commit or recovery — are classified ephemerally
// against the current checker without mutating anything.
func (s *Store) InstanceStates(ctx context.Context, id, party string) ([]InstanceState, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	snap := e.snap.Load()
	ps, ok := snap.parties[party]
	if !ok {
		return nil, fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, party, id)
	}
	chk, err := ps.complianceChecker()
	if err != nil {
		return nil, err
	}
	type capture struct {
		id     string
		trace  []label.Label
		schema uint64
		live   *instLive
	}
	var caps []capture
	for i := range e.inst {
		sh := &e.inst[i]
		sh.mu.Lock()
		for _, rec := range sh.recs[party] {
			caps = append(caps, capture{id: rec.inst.ID, trace: rec.inst.Trace, schema: rec.schema, live: rec.live})
		}
		sh.mu.Unlock()
	}
	out := make([]InstanceState, 0, len(caps))
	for _, c := range caps {
		lv := instLive{}
		if c.live != nil && c.live.pv == ps.Version {
			lv = *c.live
		} else {
			lv = rebuildLive(chk, ps.Version, c.trace)
		}
		out = append(out, InstanceState{
			Party: party, ID: c.id, TracePos: len(c.trace),
			Schema: c.schema, Status: lv.status(), Deviation: lv.dev,
		})
	}
	return out, nil
}
