package store

// Degraded read-only mode. A journaled mutator that fails cleanly —
// the append was rolled back — just returns its error and the store
// keeps running. But when the rollback itself fails the journal is
// poisoned (journal.ErrPoisoned): the WAL holds a record the memory
// state rejected, nothing more may be appended, and continuing to
// mutate would fork the durable and the in-memory histories. At that
// point the store degrades: all mutations fail with ErrDegraded while
// reads keep serving the last committed in-memory state, and the
// server layer reports 503 unavailable / readyz=false so an operator
// (or orchestrator) can drain, inspect the journal directory, and
// restart into recovery. Degradation is one-way for the process
// lifetime — only a fresh Open clears it.

import "fmt"

// degradedState pins the first unrecoverable journal error.
type degradedState struct {
	err error
}

// degrade moves the store into read-only mode; the first error wins.
func (s *Store) degrade(err error) {
	s.degradedState.CompareAndSwap(nil, &degradedState{err: err})
}

// Degraded returns the unrecoverable journal error that forced the
// store read-only, or nil while the store is healthy.
func (s *Store) Degraded() error {
	if st := s.degradedState.Load(); st != nil {
		return st.err
	}
	return nil
}

// beginMutation gates one mutating call: it fails with ErrClosed
// after Close, ErrDegraded (wrapping the original journal failure) in
// degraded mode, and otherwise admits the caller, who holds the
// returned release until the call's observable work is done. Close
// flips the closed flag under the write side of the same lock, so
// passing that barrier guarantees no admitted mutator is still
// mid-flight — no late migration claim, ingest submission, or
// checkpoint can race the journal shutting down. closeMu is the
// outermost store lock.
func (s *Store) beginMutation() (func(), error) {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return nil, ErrClosed
	}
	if st := s.degradedState.Load(); st != nil {
		s.closeMu.RUnlock()
		return nil, fmt.Errorf("%w: %v", ErrDegraded, st.err)
	}
	return s.closeMu.RUnlock, nil
}

// checkAppendErr inspects a failed WAL append: a poisoned journal
// degrades the store and upgrades the error to ErrDegraded; a clean
// failure (the append rolled back) passes through untouched.
func (s *Store) checkAppendErr(err error) error {
	if s.jnl != nil && s.jnl.Broken() {
		s.degrade(err)
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	return err
}
