// Package store is the serving heart of choreod: a sharded, versioned,
// in-memory choreography store designed for heavy concurrent traffic.
//
// Each choreography lives behind an atomically published copy-on-write
// Snapshot: readers (consistency checks, evolution analyses, view and
// discovery queries) grab the current snapshot pointer and proceed
// without holding any lock, while writers build the next snapshot and
// publish it under a per-choreography commit lock. Party states that a
// commit does not touch are shared between snapshots, so the expensive
// derived artifacts memoized on them — the bilateral views
// τ_partner(public) — are amortized across requests and commits alike.
//
// The bilateral-consistency results (intersection + annotated
// emptiness, the hot path of the paper's criterion) are cached per
// choreography keyed by (partyA, versionA, partyB, versionB). Because
// party versions are part of the key, a commit invalidates exactly the
// pairs the changed party participates in; results for untouched pairs
// keep hitting. The choreography ID space is partitioned over
// independently locked shards so unrelated choreographies never
// contend.
//
// # Construction options
//
// New takes functional options. WithShards(n) sets the choreography
// shard count (DefaultShards when omitted): shards bound lock
// contention between unrelated choreographies, not capacity.
// WithCacheCap(n) bounds the per-choreography consistency-result
// cache to n entries with arbitrary eviction on overflow; the default
// is unbounded, which is right for populations whose version churn is
// low relative to memory. WithJournal(dir) makes the store durable —
// write-ahead logging, crash recovery, online checkpoints; it
// requires the fallible constructor Open (see persist.go and
// docs/persistence.md).
//
// # Context contract
//
// Every public method takes a leading context.Context. Cheap methods
// check it once on entry; the expensive paths — consistency checks
// (between pairs), evolution analyses (between partners), snapshot
// rebuilds (between parties) and bulk-migration sweeps (between
// instances) — re-check between units of work, so an abandoned
// request stops burning CPU mid-computation. Cancellation never
// corrupts state: writes either publish a complete successor snapshot
// or nothing, and a canceled migration sweep keeps only whole,
// committed shards.
//
// # Batch and transaction contract
//
// Writes are transactional per choreography: one call, one registry
// inference, one published snapshot, one version bump — whether it
// registers a single party (RegisterParty), a whole batch
// (PutParties), or commits a multi-operation change transaction
// (Evolve + CommitEvolution). Optimistic concurrency is uniform: an
// analysis is pinned to the snapshot version it read, and committing
// it fails with ErrConflict once the choreography has advanced.
// Partial failure never publishes — if any party of a batch fails to
// derive, the snapshot stands untouched.
//
// # Instances and bulk migration
//
// Running instances are runtime data outside the schema snapshots,
// partitioned per choreography over independently locked instance
// shards. MigrateAll / StartMigration sweep them to the current
// committed snapshot through the internal/migrate engine: bounded
// workers over the shards, per-party compliance checkers memoized on
// the immutable party states, and an idempotent, resumable job per
// (choreography, version) — see instances.go.
package store

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/ingest"
	"repro/internal/journal"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/migrate"
)

// Sentinel errors, mapped onto HTTP statuses by the server layer.
var (
	// ErrNotFound marks an unknown choreography or party.
	ErrNotFound = fmt.Errorf("store: not found")
	// ErrExists marks a duplicate registration.
	ErrExists = fmt.Errorf("store: already exists")
	// ErrConflict marks an optimistic-concurrency failure: the
	// choreography advanced since the evolution was analyzed.
	ErrConflict = fmt.Errorf("store: version conflict")
	// ErrInvalid marks malformed input (empty IDs, ownerless processes,
	// empty batches).
	ErrInvalid = fmt.Errorf("store: invalid argument")
	// ErrDegraded marks a store in degraded read-only mode after an
	// unrecoverable journal write error: reads serve the last committed
	// state, every mutation fails (see degraded.go).
	ErrDegraded = fmt.Errorf("store: degraded, read-only")
	// ErrClosed marks a store after Close.
	ErrClosed = fmt.Errorf("store: closed")
)

// pairKey keys one bilateral-consistency result. Party names are
// ordered (A < B) so both query directions share one entry; the
// versions make results from superseded schemas unreachable.
type pairKey struct {
	a, b   string
	va, vb uint64
}

// entry is the mutable cell owning one choreography.
type entry struct {
	id string

	// commitMu serializes writers; readers never take it.
	commitMu sync.Mutex
	// snap is the current snapshot, atomically published.
	snap atomic.Pointer[Snapshot]

	// cons caches bilateral-consistency results for this choreography.
	consMu sync.RWMutex
	cons   map[pairKey]bool

	// inst holds running conversations — runtime data, deliberately
	// outside the schema snapshots — sharded so bulk-migration sweeps
	// never lock the whole population (see instances.go).
	inst [instShardCount]instShard
	// instAppendMu orders journaled instance recordings: the WAL order
	// of recInstances and recEvents records must match the in-memory
	// append order, because shard slice indices are migration refs
	// (see recordInstances in persist.go and applyIngest in
	// ingest.go). Untaken on in-memory stores.
	//
	//choreolint:hotlock
	instAppendMu sync.Mutex

	// ing is the choreography's streaming event engine, created lazily
	// on the first IngestEvents call (see ingest.go).
	ingMu sync.Mutex
	ing   *ingest.Engine
}

type shard struct {
	//choreolint:hotlock
	mu      sync.RWMutex
	entries map[string]*entry
}

// Stats are cumulative store counters.
type Stats struct {
	Choreographies int
	// ConsistencyHits/Misses count bilateral-consistency lookups
	// answered from / missing the result cache.
	ConsistencyHits, ConsistencyMisses uint64
	// ViewHits/Misses count bilateral-view lookups answered from /
	// missing the per-party memo.
	ViewHits, ViewMisses uint64
	// Commits counts published snapshots; Conflicts counts commits
	// rejected by optimistic concurrency.
	Commits, Conflicts uint64
	// Evolutions counts analyzed (not necessarily committed) changes.
	Evolutions uint64
	// TrackedInstances counts currently tracked instance records
	// across all choreographies; InstancesByChoreography breaks the
	// count down per choreography.
	TrackedInstances        int
	InstancesByChoreography map[string]int
	// EventsIngested counts events accepted by the streaming path;
	// IngestRejected counts events turned away by backpressure (whole
	// batches); OnlineMigrations counts instances the streaming path
	// moved to a newer schema at a compliant point (see ingest.go).
	EventsIngested, IngestRejected, OnlineMigrations uint64
	// IngestLaneRejects breaks IngestRejected down by ingest lane,
	// summed across all choreographies' engines.
	IngestLaneRejects []uint64
	// Degraded reports the store is in read-only mode; LastError is the
	// journal failure that forced it there (empty while healthy).
	Degraded  bool
	LastError string
}

// Store is a sharded in-memory choreography store safe for concurrent
// use. With WithJournal it is additionally durable: mutations are
// written ahead to a journal and recovered on Open (see persist.go
// and docs/persistence.md).
type Store struct {
	shards   []shard
	cacheCap int

	// journalDir/journalFsync are the WithJournal* settings; jnl is
	// the open journal (nil on an in-memory store, set once before the
	// store is shared). persistMu orders journaled mutations against
	// Checkpoint: mutators append+apply under the read side, a
	// checkpoint serializes state and truncates the log under the
	// write side. Lock order: commitMu and instAppendMu outside
	// persistMu, all other store locks inside it (see persist.go).
	journalDir   string
	journalFsync bool
	jnl          *journal.Log
	//choreolint:hotlock
	persistMu sync.RWMutex

	// migs tracks bulk-migration jobs by job ID (see instances.go);
	// migOrder is their creation order for bounded retention.
	migMu    sync.Mutex
	migs     map[string]*migrate.Job
	migOrder []string

	// ingestWorkers/ingestQueueCap are the WithIngest* settings; zero
	// keeps the ingest.go defaults.
	ingestWorkers  int
	ingestQueueCap int

	consHits, consMisses atomic.Uint64
	viewHits, viewMisses atomic.Uint64
	commits, conflicts   atomic.Uint64
	evolutions           atomic.Uint64

	eventsIngested   atomic.Uint64
	ingestRejected   atomic.Uint64
	onlineMigrations atomic.Uint64

	// degradedState pins the first unrecoverable journal error (see
	// degraded.go). closeMu is the mutation gate and the outermost
	// store lock: every mutating entry point holds the read side for
	// its duration (via beginMutation), Close flips closed under the
	// write side, so the flip doubles as a drain barrier.
	degradedState atomic.Pointer[degradedState]
	closeMu       sync.RWMutex
	closed        bool

	// idem is the commit idempotency-key dedup window (see idem.go):
	// key → applied outcome, with idemOrder the FIFO eviction order.
	// idemMu sits inside persistMu (taken under the commit lock).
	idemMu    sync.Mutex
	idem      map[string]IdemResult
	idemOrder []string
}

// DefaultShards is the shard count used unless WithShards overrides it.
const DefaultShards = 16

// Option configures a Store at construction time.
type Option func(*Store)

// WithShards partitions the choreography ID space over n independently
// locked shards (n <= 0 keeps DefaultShards).
func WithShards(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.shards = make([]shard, n)
		}
	}
}

// WithCacheCap bounds the per-choreography consistency-result cache to
// n entries; once full, arbitrary entries are evicted to make room
// (n <= 0 keeps the cache unbounded, the default).
func WithCacheCap(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.cacheCap = n
		}
	}
}

// New returns an empty store configured by opts. It panics when opts
// include WithJournal — opening a journal performs recovery, which
// can fail; durable stores are constructed with Open, which reports
// the error.
func New(opts ...Option) *Store {
	s := newStore(opts...)
	if s.journalDir != "" {
		panic("store: New cannot open a journal (recovery can fail); use store.Open")
	}
	return s
}

// newStore builds the in-memory skeleton both New and Open share.
func newStore(opts ...Option) *Store {
	s := &Store{shards: make([]shard, DefaultShards), migs: map[string]*migrate.Job{}, idem: map[string]IdemResult{}}
	for _, opt := range opts {
		opt(s)
	}
	for i := range s.shards {
		s.shards[i].entries = map[string]*entry{}
	}
	return s
}

// ctxErr translates a canceled or expired context into a store error;
// the expensive check and evolve paths call it between units of work so
// an abandoned request stops burning CPU.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func (s *Store) shardOf(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.shards[h.Sum32()%uint32(len(s.shards))]
}

func (s *Store) entry(id string) (*entry, error) {
	sh := s.shardOf(id)
	sh.mu.RLock()
	e, ok := sh.entries[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: choreography %q", ErrNotFound, id)
	}
	return e, nil
}

// Create registers an empty choreography. syncOps entries "party.op"
// mark synchronous operations for the registries inferred on party
// registration.
func (s *Store) Create(ctx context.Context, id string, syncOps []string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	release, err := s.beginMutation()
	if err != nil {
		return err
	}
	defer release()
	if id == "" {
		return fmt.Errorf("%w: empty choreography id", ErrInvalid)
	}
	unlock := s.persistRLock()
	defer unlock()
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.entries[id]; dup {
		return fmt.Errorf("%w: choreography %q", ErrExists, id)
	}
	if err := s.appendWAL(&walRecord{Create: &recCreate{ID: id, SyncOps: syncOps}}); err != nil {
		return err
	}
	e := &entry{
		id:   id,
		cons: map[pairKey]bool{},
	}
	e.snap.Store(&Snapshot{
		ID:      id,
		syms:    label.NewInterner(),
		syncOps: append([]string(nil), syncOps...),
		parties: map[string]*PartyState{},
	})
	sh.entries[id] = e
	return nil
}

// Delete removes a choreography, shutting its event engine down;
// in-flight ingest submissions fail with ingest.ErrClosed.
func (s *Store) Delete(ctx context.Context, id string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	release, err := s.beginMutation()
	if err != nil {
		return err
	}
	defer release()
	e, err := func() (*entry, error) {
		unlock := s.persistRLock()
		defer unlock()
		sh := s.shardOf(id)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		e, ok := sh.entries[id]
		if !ok {
			return nil, fmt.Errorf("%w: choreography %q", ErrNotFound, id)
		}
		if err := s.appendWAL(&walRecord{Delete: &recDelete{ID: id}}); err != nil {
			return nil, err
		}
		delete(sh.entries, id)
		return e, nil
	}()
	if err != nil {
		return err
	}
	// Outside every lock: Close waits for in-flight lane applies,
	// which take the persist read lock and the instance shard locks.
	e.closeIngest()
	return nil
}

// IDs returns the stored choreography IDs (unordered across shards,
// sorted within none — callers sort if they care).
func (s *Store) IDs(ctx context.Context) ([]string, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.entries {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	return out, nil
}

// Snapshot returns the current snapshot of a choreography. The
// snapshot is immutable: it remains valid (and unchanged) regardless
// of concurrent commits.
func (s *Store) Snapshot(ctx context.Context, id string) (*Snapshot, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	return e.snap.Load(), nil
}

// RegisterParty derives the public process of p and adds the party to
// the choreography. The snapshot registry is re-inferred over all
// private processes including the new one.
func (s *Store) RegisterParty(ctx context.Context, id string, p *bpel.Process) (*Snapshot, error) {
	if p == nil || p.Owner == "" {
		return nil, fmt.Errorf("%w: register needs a process with an owner", ErrInvalid)
	}
	release, err := s.beginMutation()
	if err != nil {
		return nil, err
	}
	defer release()
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	cur := e.snap.Load()
	if _, dup := cur.parties[p.Owner]; dup {
		return nil, fmt.Errorf("%w: party %q in choreography %q", ErrExists, p.Owner, id)
	}
	next, err := s.rebuildAll(ctx, cur, []*bpel.Process{p})
	if err != nil {
		return nil, err
	}
	if err := s.publish(e, next, []*bpel.Process{p}); err != nil {
		return nil, err
	}
	s.commits.Add(1)
	return next, nil
}

// UpdateParty replaces a party's private process outright (the
// uncontrolled path: no classification, no propagation planning) and
// invalidates the consistency results of the pairs it touches. A
// non-nil ifVersion pins the write to that snapshot version: the
// check runs under the commit lock, so a lost precondition always
// fails with ErrConflict instead of silently overwriting a concurrent
// commit.
func (s *Store) UpdateParty(ctx context.Context, id string, p *bpel.Process, ifVersion *uint64) (*Snapshot, error) {
	if p == nil || p.Owner == "" {
		return nil, fmt.Errorf("%w: update needs a process with an owner", ErrInvalid)
	}
	release, err := s.beginMutation()
	if err != nil {
		return nil, err
	}
	defer release()
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	cur := e.snap.Load()
	if err := s.checkVersion(cur, ifVersion); err != nil {
		return nil, err
	}
	if _, ok := cur.parties[p.Owner]; !ok {
		return nil, fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, p.Owner, id)
	}
	next, err := s.rebuildAll(ctx, cur, []*bpel.Process{p})
	if err != nil {
		return nil, err
	}
	if err := s.publish(e, next, []*bpel.Process{p}); err != nil {
		return nil, err
	}
	s.commits.Add(1)
	s.invalidatePairs(e, p.Owner)
	return next, nil
}

// checkVersion enforces an optimistic-concurrency precondition under
// the caller-held commit lock; nil means unconditional.
func (s *Store) checkVersion(cur *Snapshot, ifVersion *uint64) error {
	if ifVersion != nil && cur.Version != *ifVersion {
		s.conflicts.Add(1)
		return fmt.Errorf("%w: choreography %q at version %d, precondition %d",
			ErrConflict, cur.ID, cur.Version, *ifVersion)
	}
	return nil
}

// PutParties registers or updates several parties as one change
// transaction: the registry is inferred once over the combined set of
// private processes, every supplied party is re-derived against it,
// and a single successor snapshot is published (one version bump, one
// commit). Parties not present yet are added; existing ones are
// replaced and their cached pair results invalidated. Nothing is
// published if any derivation fails. A non-nil ifVersion pins the
// batch to that snapshot version (checked under the commit lock;
// ErrConflict on a lost race).
func (s *Store) PutParties(ctx context.Context, id string, procs []*bpel.Process, ifVersion *uint64) (*Snapshot, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("%w: no parties to put", ErrInvalid)
	}
	seen := map[string]bool{}
	for _, p := range procs {
		if p == nil || p.Owner == "" {
			return nil, fmt.Errorf("%w: put needs processes with owners", ErrInvalid)
		}
		if seen[p.Owner] {
			return nil, fmt.Errorf("%w: party %q appears twice in one batch", ErrInvalid, p.Owner)
		}
		seen[p.Owner] = true
	}
	release, err := s.beginMutation()
	if err != nil {
		return nil, err
	}
	defer release()
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	cur := e.snap.Load()
	if err := s.checkVersion(cur, ifVersion); err != nil {
		return nil, err
	}
	next, err := s.rebuildAll(ctx, cur, procs)
	if err != nil {
		return nil, err
	}
	if err := s.publish(e, next, procs); err != nil {
		return nil, err
	}
	s.commits.Add(1)
	for _, p := range procs {
		if _, existed := cur.parties[p.Owner]; existed {
			s.invalidatePairs(e, p.Owner)
		}
	}
	return next, nil
}

// rebuildAll produces the successor snapshot with every proc in procs
// registered (if new) or replaced, re-inferring the registry once over
// the combined set and re-deriving only the supplied processes. Every
// untouched party state is shared with cur. Builder: the successor is
// under construction until the caller publishes it; the automata it
// re-interns are the freshly derived publics, never cur's.
//
//choreolint:builder
func (s *Store) rebuildAll(ctx context.Context, cur *Snapshot, procs []*bpel.Process) (*Snapshot, error) {
	reg, err := InferRegistry(cur.privatesWith(procs), cur.syncOps)
	if err != nil {
		return nil, err
	}
	next := cur.clone()
	next.Version = cur.Version + 1
	next.Registry = reg
	for _, p := range procs {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		res, err := mapping.Derive(p, reg)
		if err != nil {
			return nil, fmt.Errorf("store: deriving %q: %w", p.Owner, err)
		}
		// Move the freshly derived public onto the choreography's
		// shared interner: views and pair products across parties then
		// work on one symbol space without re-hashing labels.
		res.Automaton.Reintern(next.syms)
		var partyVersion uint64 = 1
		if old, ok := cur.parties[p.Owner]; ok {
			partyVersion = old.Version + 1
		} else {
			next.order = append(next.order, p.Owner)
		}
		next.parties[p.Owner] = newPartyState(p, res, partyVersion)
	}
	next.computePairs()
	return next, nil
}

// invalidatePairs drops every cached consistency result involving
// party — exactly the pairs a change to party can touch. Results for
// pairs between other parties stay valid and stay cached.
func (s *Store) invalidatePairs(e *entry, party string) {
	e.consMu.Lock()
	for k := range e.cons {
		if k.a == party || k.b == party {
			delete(e.cons, k)
		}
	}
	e.consMu.Unlock()
}

// view returns the memoized bilateral view, counting hit/miss.
func (s *Store) view(ps *PartyState, forParty string) *afsa.Automaton {
	v, hit := ps.view(forParty)
	if hit {
		s.viewHits.Add(1)
	} else {
		s.viewMisses.Add(1)
	}
	return v
}

// PairResult is the consistency status of one interacting pair.
type PairResult struct {
	A, B       string
	Consistent bool
	// Cached reports whether the result came from the cache.
	Cached bool
}

// CheckReport is the outcome of checking every interacting pair of a
// choreography snapshot.
type CheckReport struct {
	ID string
	// Version is the snapshot version the report describes.
	Version uint64
	Pairs   []PairResult
}

// Consistent reports whether every pair is consistent.
func (r *CheckReport) Consistent() bool {
	for _, p := range r.Pairs {
		if !p.Consistent {
			return false
		}
	}
	return true
}

// CheckSnapshot verifies bilateral consistency of every interacting
// pair of snap, using e's result cache. snap may be older than the
// current snapshot; version-keyed cache entries keep old and new
// results apart.
func (s *Store) checkSnapshot(ctx context.Context, e *entry, snap *Snapshot, useCache bool) (*CheckReport, error) {
	rep := &CheckReport{ID: snap.ID, Version: snap.Version, Pairs: make([]PairResult, 0, len(snap.pairs))}
	for _, pair := range snap.pairs {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		res, err := s.checkPair(e, snap, pair[0], pair[1], useCache)
		if err != nil {
			return nil, err
		}
		rep.Pairs = append(rep.Pairs, res)
	}
	return rep, nil
}

func (s *Store) checkPair(e *entry, snap *Snapshot, a, b string, useCache bool) (PairResult, error) {
	pa, pb := snap.parties[a], snap.parties[b]
	key := pairKey{a: a, b: b, va: pa.Version, vb: pb.Version}
	if key.b < key.a {
		key.a, key.b, key.va, key.vb = key.b, key.a, key.vb, key.va
	}
	if useCache {
		e.consMu.RLock()
		ok, cached := e.cons[key]
		e.consMu.RUnlock()
		if cached {
			s.consHits.Add(1)
			return PairResult{A: a, B: b, Consistent: ok, Cached: true}, nil
		}
		s.consMisses.Add(1)
	}
	ok, err := afsa.Consistent(s.view(pa, b), s.view(pb, a))
	if err != nil {
		return PairResult{}, fmt.Errorf("store: pair %s/%s: %w", a, b, err)
	}
	if useCache {
		e.consMu.Lock()
		e.cons[key] = ok
		if s.cacheCap > 0 {
			for k := range e.cons {
				if len(e.cons) <= s.cacheCap {
					break
				}
				if k != key {
					delete(e.cons, k)
				}
			}
		}
		e.consMu.Unlock()
	}
	return PairResult{A: a, B: b, Consistent: ok}, nil
}

// Check verifies bilateral consistency of every interacting pair,
// serving repeated queries from the result cache. It honors ctx
// cancellation between pairs.
func (s *Store) Check(ctx context.Context, id string) (*CheckReport, error) {
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	return s.checkSnapshot(ctx, e, e.snap.Load(), true)
}

// CheckUncached recomputes every pair, bypassing (and not feeding) the
// result cache — the baseline the cache is measured against.
func (s *Store) CheckUncached(ctx context.Context, id string) (*CheckReport, error) {
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	return s.checkSnapshot(ctx, e, e.snap.Load(), false)
}

// CheckPair checks one pair through the cache.
func (s *Store) CheckPair(ctx context.Context, id, a, b string) (PairResult, error) {
	if err := ctxErr(ctx); err != nil {
		return PairResult{}, err
	}
	e, err := s.entry(id)
	if err != nil {
		return PairResult{}, err
	}
	snap := e.snap.Load()
	for _, name := range [2]string{a, b} {
		if _, ok := snap.parties[name]; !ok {
			return PairResult{}, fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, name, id)
		}
	}
	return s.checkPair(e, snap, a, b, true)
}

// View returns the bilateral view τ_forParty(of's public process) from
// the memo.
func (s *Store) View(ctx context.Context, id, of, forParty string) (*afsa.Automaton, error) {
	snap, err := s.Snapshot(ctx, id)
	if err != nil {
		return nil, err
	}
	ps, ok := snap.parties[of]
	if !ok {
		return nil, fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, of, id)
	}
	return s.view(ps, forParty), nil
}

// Stats returns cumulative counters plus a momentary census of the
// tracked-instance population (counted under the instance-shard locks,
// one shard at a time).
func (s *Store) Stats() Stats {
	n := 0
	byChoreo := map[string]int{}
	var laneRejects []uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		es := make([]*entry, 0, len(sh.entries))
		for _, e := range sh.entries {
			es = append(es, e)
		}
		sh.mu.RUnlock()
		n += len(es)
		for _, e := range es {
			count := 0
			for j := range e.inst {
				ish := &e.inst[j]
				ish.mu.Lock()
				for _, recs := range ish.recs {
					count += len(recs)
				}
				ish.mu.Unlock()
			}
			byChoreo[e.id] = count
			e.ingMu.Lock()
			ing := e.ing
			e.ingMu.Unlock()
			if ing != nil {
				for lane, r := range ing.Stats().LaneRejects {
					for len(laneRejects) <= lane {
						laneRejects = append(laneRejects, 0)
					}
					laneRejects[lane] += r
				}
			}
		}
	}
	total := 0
	for _, c := range byChoreo {
		total += c
	}
	st := Stats{
		Choreographies:          n,
		ConsistencyHits:         s.consHits.Load(),
		ConsistencyMisses:       s.consMisses.Load(),
		ViewHits:                s.viewHits.Load(),
		ViewMisses:              s.viewMisses.Load(),
		Commits:                 s.commits.Load(),
		Conflicts:               s.conflicts.Load(),
		Evolutions:              s.evolutions.Load(),
		TrackedInstances:        total,
		InstancesByChoreography: byChoreo,
		EventsIngested:          s.eventsIngested.Load(),
		IngestRejected:          s.ingestRejected.Load(),
		OnlineMigrations:        s.onlineMigrations.Load(),
		IngestLaneRejects:       laneRejects,
	}
	if err := s.Degraded(); err != nil {
		st.Degraded = true
		st.LastError = err.Error()
	}
	return st
}
