package store

import (
	"sort"
	"sync"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/instance"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/wsdl"
)

// PartyState is the immutable state of one party at one version: its
// private process, the derived public process and mapping table. A
// PartyState is shared by every snapshot taken while the party is
// unchanged, so the memoized bilateral views survive evolutions of
// *other* parties.
type PartyState struct {
	Name string
	// Version counts the commits that touched this party (starting at
	// 1). It keys the consistency cache: results computed for an old
	// version can never be confused with the current behavior.
	Version uint64
	Private *bpel.Process
	Public  *afsa.Automaton
	Table   mapping.Table

	// alphabet of Public, precomputed: interaction queries
	// (InteractingPairs, partner discovery) run on every check.
	alphabet label.Set

	// views memoizes Public.View(forParty). Guarded by viewMu; the
	// automata themselves are immutable once published.
	viewMu sync.RWMutex
	views  map[string]*afsa.Automaton

	// chk memoizes the compliance checker over Public (determinized
	// automaton + viable-state set): migration sweeps classify every
	// instance of this party version through one shared checker.
	chkOnce sync.Once
	chk     *instance.Checker
	chkErr  error
}

func newPartyState(p *bpel.Process, res *mapping.Result, version uint64) *PartyState {
	return &PartyState{
		Name:     p.Owner,
		Version:  version,
		Private:  p.Clone(),
		Public:   res.Automaton,
		Table:    res.Table,
		alphabet: res.Automaton.Alphabet(),
		views:    map[string]*afsa.Automaton{},
	}
}

// view returns the memoized bilateral view τ_forParty(Public),
// reporting whether it was a cache hit.
func (ps *PartyState) view(forParty string) (*afsa.Automaton, bool) {
	ps.viewMu.RLock()
	v, ok := ps.views[forParty]
	ps.viewMu.RUnlock()
	if ok {
		return v, true
	}
	v = ps.Public.View(forParty)
	ps.viewMu.Lock()
	if cached, ok := ps.views[forParty]; ok {
		v = cached // another goroutine won the race; keep one copy
	} else {
		ps.views[forParty] = v
	}
	ps.viewMu.Unlock()
	return v, false
}

// complianceChecker returns the memoized ADEPT-style compliance
// checker of this party version's public process; like the bilateral
// views it is computed at most once per PartyState and shared by
// every concurrent reader.
func (ps *PartyState) complianceChecker() (*instance.Checker, error) {
	ps.chkOnce.Do(func() {
		ps.chk, ps.chkErr = instance.NewChecker(ps.Public)
	})
	return ps.chk, ps.chkErr
}

// Snapshot is an immutable, copy-on-write view of one choreography.
// Readers obtain a snapshot and work on it without locks; writers
// build a new snapshot and publish it atomically. Party states that a
// commit does not touch are shared between the old and new snapshot.
//
// The immutability is load-bearing: once a snapshot is published via
// entry.snap, concurrent readers hold it lock-free, so any in-place
// write is a data race. choreolint's snapshotimmut pass enforces this
// — writes to a Snapshot are only legal in //choreolint:builder
// functions operating on a not-yet-published copy.
//
//choreolint:frozen
type Snapshot struct {
	// ID is the choreography identifier.
	ID string
	// Version counts the commits applied to the choreography.
	Version uint64
	// Registry resolves operations; rebuilt on every commit from the
	// current private processes plus the choreography's sync markers.
	Registry *wsdl.Registry

	// syms is the choreography's shared label interner: every party
	// public registered into any snapshot of this choreography is
	// reinterned into it at commit time, so bilateral views, pair
	// intersections and migration checkers across all parties agree on
	// label symbols and never re-hash label strings. The interner is
	// append-only and safe for concurrent use; snapshots of one
	// choreography share a single instance across versions.
	syms *label.Interner

	syncOps []string
	parties map[string]*PartyState
	order   []string
	// pairs caches InteractingPairs: the snapshot is immutable, so the
	// alphabet scans run once per commit instead of once per check.
	pairs [][2]string
}

// Parties returns the party names in registration order.
func (s *Snapshot) Parties() []string {
	return append([]string(nil), s.order...)
}

// Party returns one party's state.
func (s *Snapshot) Party(name string) (*PartyState, bool) {
	ps, ok := s.parties[name]
	return ps, ok
}

// NumParties returns the number of registered parties.
func (s *Snapshot) NumParties() int { return len(s.parties) }

// privates collects the current private processes (for registry
// rebuilds), substituting replace for its owner when non-nil.
func (s *Snapshot) privates(replace *bpel.Process) []*bpel.Process {
	if replace == nil {
		return s.privatesWith(nil)
	}
	return s.privatesWith([]*bpel.Process{replace})
}

// privatesWith collects the current private processes with every
// process of repl substituted for its owner (new owners are appended
// in repl order) — the combined process set a batch commit infers its
// registry from.
func (s *Snapshot) privatesWith(repl []*bpel.Process) []*bpel.Process {
	byOwner := make(map[string]*bpel.Process, len(repl))
	for _, p := range repl {
		byOwner[p.Owner] = p
	}
	out := make([]*bpel.Process, 0, len(s.parties)+len(repl))
	used := make(map[string]bool, len(repl))
	for _, name := range s.order {
		p := s.parties[name].Private
		if r, ok := byOwner[name]; ok {
			p = r
			used[name] = true
		}
		out = append(out, p)
	}
	for _, p := range repl {
		if !used[p.Owner] {
			out = append(out, p)
		}
	}
	return out
}

// interacts reports whether parties a and b exchange at least one
// message.
func (s *Snapshot) interacts(a, b string) bool {
	for l := range s.parties[a].alphabet {
		if l.Between(a, b) {
			return true
		}
	}
	for l := range s.parties[b].alphabet {
		if l.Between(a, b) {
			return true
		}
	}
	return false
}

// InteractingPairs returns the party pairs that exchange at least one
// message, in deterministic order (precomputed per snapshot).
func (s *Snapshot) InteractingPairs() [][2]string {
	return append([][2]string(nil), s.pairs...)
}

// computePairs fills the pair cache; called once when the snapshot is
// built, before publication.
func (s *Snapshot) computePairs() {
	s.pairs = nil
	for i := 0; i < len(s.order); i++ {
		for j := i + 1; j < len(s.order); j++ {
			a, b := s.order[i], s.order[j]
			if s.interacts(a, b) {
				s.pairs = append(s.pairs, [2]string{a, b})
			}
		}
	}
}

// PartnersOf returns the registered parties that exchange messages
// with party, sorted.
func (s *Snapshot) PartnersOf(party string) []string {
	ps, ok := s.parties[party]
	if !ok {
		return nil
	}
	seen := map[string]bool{}
	for l := range ps.alphabet {
		for _, other := range [2]string{l.Sender(), l.Receiver()} {
			if other != party && other != "" {
				if _, registered := s.parties[other]; registered {
					seen[other] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// clone returns a shallow copy of the snapshot sharing every party
// state; the caller replaces the touched parties and recomputes the
// pair cache (computePairs) before publishing.
func (s *Snapshot) clone() *Snapshot {
	parties := make(map[string]*PartyState, len(s.parties))
	for k, v := range s.parties {
		parties[k] = v
	}
	return &Snapshot{
		ID:       s.ID,
		Version:  s.Version,
		Registry: s.Registry,
		syms:     s.syms,
		syncOps:  append([]string(nil), s.syncOps...),
		parties:  parties,
		order:    append([]string(nil), s.order...),
	}
}
