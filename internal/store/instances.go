package store

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/afsa"
	"repro/internal/instance"
	"repro/internal/migrate"
)

// Instance storage. Running conversations are runtime data,
// deliberately outside the schema snapshots: recording an instance
// must not publish a new snapshot or invalidate any consistency
// result. Each choreography's instances are partitioned over
// instShardCount independently locked shards keyed by
// hash(party, instance id), so a bulk-migration sweep never holds a
// choreography-wide lock — it drains one shard at a time while
// recording, checking and evolving continue on the rest.

// instShardCount fixes the instance-shard fan-out per choreography. 64
// shards keep per-shard critical sections tiny and give a worker pool
// enough independent units to scale on (a 10k-instance population is
// ~156 instances per shard).
const instShardCount = 64

// instRecord is one tracked instance. schema is the choreography
// snapshot version the instance currently complies with: the version
// current when it was recorded, advanced by every bulk migration (or
// streaming online migration) that classified it migratable. Records
// are addressed by pointer, so a commit tags them in place regardless
// of concurrent appends.
type instRecord struct {
	inst   instance.Instance
	schema uint64
	// ref is the record's index in its party's shard slice — the
	// stable address migration refs and journaled tag advances use.
	// Set at append time; records never move.
	ref int
	// live is the streaming path's derived runtime state (replay state,
	// deviation point); nil until the first ingested event touches the
	// record. It is replaced wholesale under the shard lock, never
	// mutated in place, so a loaded pointer stays consistent. Live
	// state is derived data: it is neither journaled nor checkpointed,
	// and is rebuilt lazily from the trace after recovery or a schema
	// commit (see ingest.go).
	live *instLive
}

// instShard is one lockable slice of a choreography's instances,
// grouped by party. Slices are append-only: a record's (party, index)
// position never changes, which is what migrate.Item.Ref relies on.
type instShard struct {
	//choreolint:hotlock
	mu   sync.Mutex
	recs map[string][]*instRecord
	// idx resolves (party, instance id) → the party's FIRST record
	// with that id; the streaming event path appends to that record.
	// Later duplicates recorded through AddInstances never displace
	// the first, keeping the mapping deterministic across replay.
	idx map[string]*instRecord
}

func instShardOf(party, id string) int {
	h := fnv.New32a()
	h.Write([]byte(party))
	h.Write([]byte{0})
	h.Write([]byte(id))
	return int(h.Sum32() % instShardCount)
}

// instIdxKey flattens (party, instance id) into one idx map key.
func instIdxKey(party, id string) string { return party + "\x00" + id }

// appendLocked appends one record to party's slice, assigning its ref
// and registering it in the id index; the caller holds sh.mu.
func (sh *instShard) appendLocked(party string, rec *instRecord) {
	if sh.recs == nil {
		sh.recs = map[string][]*instRecord{}
	}
	if sh.idx == nil {
		sh.idx = map[string]*instRecord{}
	}
	rec.ref = len(sh.recs[party])
	sh.recs[party] = append(sh.recs[party], rec)
	if k := instIdxKey(party, rec.inst.ID); sh.idx[k] == nil {
		sh.idx[k] = rec
	}
}

// addInstances distributes records over e's instance shards, tagging
// them with the given snapshot version.
func (e *entry) addInstances(party string, insts []instance.Instance, schema uint64) {
	for _, inst := range insts {
		sh := &e.inst[instShardOf(party, inst.ID)]
		sh.mu.Lock()
		sh.appendLocked(party, &instRecord{inst: inst, schema: schema})
		sh.mu.Unlock()
	}
}

// instancesOf collects party's instances across shards (deterministic
// shard order, not insertion order).
func (e *entry) instancesOf(party string) []instance.Instance {
	var out []instance.Instance
	for i := range e.inst {
		sh := &e.inst[i]
		sh.mu.Lock()
		for _, rec := range sh.recs[party] {
			out = append(out, rec.inst)
		}
		sh.mu.Unlock()
	}
	return out
}

// AddInstances records running conversations of a party. The records
// are tagged with the current snapshot version — the schema they are
// assumed to comply with until a bulk migration moves them.
func (s *Store) AddInstances(ctx context.Context, id, party string, insts []instance.Instance) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	release, err := s.beginMutation()
	if err != nil {
		return err
	}
	defer release()
	e, err := s.entry(id)
	if err != nil {
		return err
	}
	snap := e.snap.Load()
	if _, ok := snap.parties[party]; !ok {
		return fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, party, id)
	}
	return s.recordInstances(e, party, insts, snap.Version)
}

// SampleInstances draws n seeded random-walk instances of party's
// current public process, records and returns them.
func (s *Store) SampleInstances(ctx context.Context, id, party string, seed int64, n, maxLen int) ([]instance.Instance, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	release, err := s.beginMutation()
	if err != nil {
		return nil, err
	}
	defer release()
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	snap := e.snap.Load()
	ps, ok := snap.parties[party]
	if !ok {
		return nil, fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, party, id)
	}
	insts := instance.SampleInstances(ps.Public, seed, n, maxLen)
	if err := s.recordInstances(e, party, insts, snap.Version); err != nil {
		return nil, err
	}
	return insts, nil
}

// Instances returns the recorded instances of a party (in shard order,
// deterministic for a fixed population).
func (s *Store) Instances(ctx context.Context, id, party string) ([]instance.Instance, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	return e.instancesOf(party), nil
}

// InstanceRecord is one tracked instance with its migration state.
type InstanceRecord struct {
	Inst instance.Instance
	// Schema is the choreography snapshot version the instance
	// complies with: the version current when it was recorded,
	// advanced by every bulk migration that classified it migratable.
	// Instances whose Schema trails the current snapshot are the
	// stragglers a completed sweep left stranded.
	Schema uint64
}

// InstanceRecords returns the recorded instances of a party together
// with the schema version each one currently complies with (in shard
// order, deterministic for a fixed population).
func (s *Store) InstanceRecords(ctx context.Context, id, party string) ([]InstanceRecord, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	var out []InstanceRecord
	for i := range e.inst {
		sh := &e.inst[i]
		sh.mu.Lock()
		for _, rec := range sh.recs[party] {
			out = append(out, InstanceRecord{Inst: rec.inst, Schema: rec.schema})
		}
		sh.mu.Unlock()
	}
	return out, nil
}

// Migrate classifies the recorded instances of party against candidate
// (ADEPT-style compliance, Sec. 8). A nil candidate means the party's
// current public process — served by the party state's memoized
// compliance checker; passing a pending Evolution's NewPublic answers
// "what would break" before committing.
func (s *Store) Migrate(ctx context.Context, id, party string, candidate *afsa.Automaton) (*instance.Report, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	e, err := s.entry(id)
	if err != nil {
		return nil, err
	}
	var chk *instance.Checker
	if candidate == nil {
		ps, ok := e.snap.Load().parties[party]
		if !ok {
			return nil, fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, party, id)
		}
		if chk, err = ps.complianceChecker(); err != nil {
			return nil, err
		}
	} else if chk, err = instance.NewChecker(candidate); err != nil {
		return nil, err
	}
	return instance.MigrateWith(e.instancesOf(party), chk), nil
}

// ---- bulk migration (internal/migrate glue) ----

// maxMigrationJobs bounds the retained job reports; the oldest
// terminal jobs are evicted first (running jobs are never evicted).
const maxMigrationJobs = 256

// instanceSource adapts one entry's instance shards to the engine's
// Source interface, tagging committed migrations with target (and
// journaling the tag advances when st is durable).
type instanceSource struct {
	st     *Store
	e      *entry
	target uint64
}

func (src *instanceSource) Shards() int { return instShardCount }

func (src *instanceSource) Load(ctx context.Context, shard int) ([]migrate.Item, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sh := &src.e.inst[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var out []migrate.Item
	parties := make([]string, 0, len(sh.recs))
	for party := range sh.recs {
		parties = append(parties, party)
	}
	sort.Strings(parties)
	for _, party := range parties {
		for i, rec := range sh.recs[party] {
			out = append(out, migrate.Item{Party: party, Inst: rec.inst, Ref: i})
		}
	}
	return out, nil
}

func (src *instanceSource) Commit(ctx context.Context, shard int, migrated []migrate.Item) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if src.st.jnl != nil {
		rec := recMigTags{ID: src.e.id, Target: src.target, Shard: shard, Refs: make([]tagRef, 0, len(migrated))}
		for _, it := range migrated {
			rec.Refs = append(rec.Refs, tagRef{Party: it.Party, Ref: it.Ref})
		}
		unlock := src.st.persistRLock()
		defer unlock()
		if err := src.st.appendWAL(&walRecord{MigTags: &rec}); err != nil {
			return err
		}
	}
	sh := &src.e.inst[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, it := range migrated {
		// Tags only ever advance: a slow sweep targeting an older
		// snapshot must not downgrade records a newer sweep (or a
		// post-commit recording) already moved past its target.
		if rec := sh.recs[it.Party][it.Ref]; rec.schema < src.target {
			rec.schema = src.target
		}
	}
	return nil
}

// migrationJobID derives the deterministic job identity of "sweep
// choreography id to committed version v" — the key that makes
// starting the same migration twice idempotent.
func migrationJobID(id string, version uint64) string {
	return fmt.Sprintf("mig-%s-v%d", id, version)
}

// prepareMigration resolves or creates the job for sweeping id's
// instances to its current snapshot, plus the engine inputs.
func (s *Store) prepareMigration(id string, workers int) (*migrate.Job, *migrate.Engine, *instanceSource, migrate.Classifier, error) {
	e, err := s.entry(id)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	snap := e.snap.Load()
	jobID := migrationJobID(id, snap.Version)
	unlock := s.persistRLock()
	s.migMu.Lock()
	job, ok := s.migs[jobID]
	if !ok {
		if err := s.appendWAL(&walRecord{MigJob: &recMigJob{
			Job: jobID, ID: id, Version: snap.Version, Shards: instShardCount,
		}}); err != nil {
			s.migMu.Unlock()
			unlock()
			return nil, nil, nil, nil, err
		}
		job = migrate.NewJob(jobID, id, snap.Version, instShardCount)
		job.Observer = s.shardObserver(jobID)
		s.migs[jobID] = job
		s.migOrder = append(s.migOrder, jobID)
		s.evictMigrationJobsLocked()
	}
	s.migMu.Unlock()
	unlock()

	// The classifier closes over the snapshot the job targets: party
	// states are immutable, so the memoized compliance checkers
	// (determinized automaton + viable set, built once per party
	// version) are shared by every worker and every resume.
	classify := func(party string, inst instance.Instance) (instance.Status, error) {
		ps, ok := snap.parties[party]
		if !ok {
			return instance.NonReplayable, fmt.Errorf("%w: party %q in choreography %q", ErrNotFound, party, id)
		}
		chk, err := ps.complianceChecker()
		if err != nil {
			return instance.NonReplayable, err
		}
		return chk.Check(inst), nil
	}
	eng := &migrate.Engine{Workers: workers}
	return job, eng, &instanceSource{st: s, e: e, target: snap.Version}, classify, nil
}

// evictMigrationJobsLocked drops the oldest terminal jobs past the
// retention bound; callers hold migMu.
func (s *Store) evictMigrationJobsLocked() {
	for len(s.migOrder) > maxMigrationJobs {
		evicted := false
		for i, jobID := range s.migOrder {
			if s.migs[jobID].Snapshot().Terminal() {
				delete(s.migs, jobID)
				s.migOrder = append(s.migOrder[:i], s.migOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything running; keep them all
		}
	}
}

// MigrateAll sweeps every tracked instance of the choreography —
// all parties — through migratability classification against the
// current committed snapshot, moving migratable instances to it and
// reporting the stranded ones. The sweep runs on a bounded pool of
// workers over the instance shards; no choreography-wide lock is held
// at any point.
//
// The job is idempotent and resumable: its identity is
// (choreography, snapshot version), calling MigrateAll again for a
// completed job returns the finished report without re-sweeping, and
// canceling mid-sweep (ctx) keeps the committed shards so the next
// call resumes with the remainder. MigrateAll blocks until the sweep
// ends; StartMigration is the non-blocking variant.
func (s *Store) MigrateAll(ctx context.Context, id string, workers int) (*migrate.Job, error) {
	release, err := s.beginMutation()
	if err != nil {
		return nil, err
	}
	defer release()
	job, eng, src, classify, err := s.prepareMigration(id, workers)
	if err != nil {
		return nil, err
	}
	if err := eng.Run(ctx, job, src, classify); err != nil {
		return job, fmt.Errorf("store: migration %s: %w", job.ID, err)
	}
	return job, nil
}

// StartMigration launches (or resumes) the bulk migration of id's
// instances in the background and returns its job immediately; poll
// job.Snapshot, block on job.Wait, or stop it with job.Cancel. Like
// MigrateAll it is idempotent per (choreography, snapshot version).
// The runner role is claimed before returning, so a resumed job is
// never observable in its previous terminal state and an immediate
// Cancel takes effect; the sweep itself outlives the request that
// started it (Cancel, not a request context, is the way to stop it).
func (s *Store) StartMigration(ctx context.Context, id string, workers int) (*migrate.Job, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	release, err := s.beginMutation()
	if err != nil {
		return nil, err
	}
	defer release()
	job, eng, src, classify, err := s.prepareMigration(id, workers)
	if err != nil {
		return nil, err
	}
	eng.RunAsync(job, src, classify)
	return job, nil
}

// MigrationJob returns one of id's migration jobs.
func (s *Store) MigrationJob(ctx context.Context, id, jobID string) (*migrate.Job, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if _, err := s.entry(id); err != nil {
		return nil, err
	}
	s.migMu.Lock()
	job, ok := s.migs[jobID]
	s.migMu.Unlock()
	if !ok || job.Choreography != id {
		return nil, fmt.Errorf("%w: migration job %q in choreography %q", ErrNotFound, jobID, id)
	}
	return job, nil
}

// MigrationJobs lists id's migration jobs, sorted by job ID.
func (s *Store) MigrationJobs(ctx context.Context, id string) ([]*migrate.Job, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if _, err := s.entry(id); err != nil {
		return nil, err
	}
	s.migMu.Lock()
	var out []*migrate.Job
	for _, job := range s.migs {
		if job.Choreography == id {
			out = append(out, job)
		}
	}
	s.migMu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}
