package store

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/paperrepro"
)

// PutParties must publish the whole batch as one commit: one version
// bump, every party present afterwards, and the combined registry
// inferred once (the cross-party operations resolve even though no
// single process mentions them all).
func TestPutPartiesSingleCommit(t *testing.T) {
	s := New()
	if err := s.Create(ctx, "c", paperSyncOps); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().Commits
	snap, err := s.PutParties(ctx, "c", []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 {
		t.Fatalf("batch register version = %d, want 1", snap.Version)
	}
	if got := s.Stats().Commits - before; got != 1 {
		t.Fatalf("batch register commits = %d, want 1", got)
	}
	if snap.NumParties() != 3 {
		t.Fatalf("parties = %d, want 3", snap.NumParties())
	}
	rep, err := s.Check(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Fatalf("batch-registered scenario inconsistent: %+v", rep.Pairs)
	}

	// A second batch mixing an update (accounting) with no-op partners
	// replaces in place: still one commit, party version bumped.
	before = s.Stats().Commits
	snap2, err := s.PutParties(ctx, "c", []*bpel.Process{paperrepro.AccountingProcess()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Commits - before; got != 1 {
		t.Fatalf("batch update commits = %d, want 1", got)
	}
	acc, _ := snap2.Party(paperrepro.Accounting)
	if acc.Version != 2 {
		t.Fatalf("accounting version = %d, want 2", acc.Version)
	}
	buyer, _ := snap2.Party(paperrepro.Buyer)
	if buyer.Version != 1 {
		t.Fatalf("untouched buyer version = %d, want 1", buyer.Version)
	}
}

func TestPutPartiesValidation(t *testing.T) {
	s := New()
	if err := s.Create(ctx, "c", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutParties(ctx, "c", nil, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty batch error = %v, want ErrInvalid", err)
	}
	dup := []*bpel.Process{paperrepro.BuyerProcess(), paperrepro.BuyerProcess()}
	if _, err := s.PutParties(ctx, "c", dup, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("duplicate-owner batch error = %v, want ErrInvalid", err)
	}
	if _, err := s.PutParties(ctx, "ghost", []*bpel.Process{paperrepro.BuyerProcess()}, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown choreography error = %v, want ErrNotFound", err)
	}
}

// A multi-op Evolve is one change transaction: the analysis equals the
// analysis of the sequential composition, there is exactly one
// evolution (not one per op), and committing it bumps the version once.
func TestEvolveMultiOpMatchesSequentialComposition(t *testing.T) {
	ops := []change.Operation{paperrepro.OrderTwoChange(), paperrepro.TrackingLimitChange()}

	// Reference: apply the ops by hand, evolve with a whole-process
	// replacement (the v1 idiom).
	final := paperrepro.AccountingProcess()
	for _, op := range ops {
		next, err := op.Apply(final)
		if err != nil {
			t.Fatal(err)
		}
		final = next
	}
	sRef, idRef := paperStore(t)
	refEvo, err := sRef.Evolve(ctx, idRef, paperrepro.Accounting, change.Replace{Path: nil, New: final.Body})
	if err != nil {
		t.Fatal(err)
	}

	s, id := paperStore(t)
	before := s.Stats().Evolutions
	evo, err := s.Evolve(ctx, id, paperrepro.Accounting, ops...)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Evolutions - before; got != 1 {
		t.Fatalf("multi-op analysis counted %d evolutions, want 1", got)
	}
	if len(evo.Ops) != 2 {
		t.Fatalf("evolution ops = %d, want 2", len(evo.Ops))
	}
	if !afsa.Equivalent(evo.NewPublic, refEvo.NewPublic) {
		t.Fatal("multi-op public differs from sequential composition")
	}
	if len(evo.Impacts) != len(refEvo.Impacts) {
		t.Fatalf("impacts = %d, want %d", len(evo.Impacts), len(refEvo.Impacts))
	}
	for i := range evo.Impacts {
		got, want := evo.Impacts[i], refEvo.Impacts[i]
		if got.Partner != want.Partner || got.ViewChanged != want.ViewChanged ||
			got.Classification != want.Classification || len(got.Plans) != len(want.Plans) {
			t.Fatalf("impact %d differs: %+v vs %+v", i, got, want)
		}
	}

	snapBefore, _ := s.Snapshot(ctx, id)
	snap, err := s.CommitEvolution(ctx, evo)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != snapBefore.Version+1 {
		t.Fatalf("committed version = %d, want one bump from %d", snap.Version, snapBefore.Version)
	}
}

func TestEvolveNoOpsRejected(t *testing.T) {
	s, id := paperStore(t)
	if _, err := s.Evolve(ctx, id, paperrepro.Accounting); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty evolve error = %v, want ErrInvalid", err)
	}
}

// A canceled context must stop the expensive paths with a context
// error instead of computing a result.
func TestContextCancellation(t *testing.T) {
	s, id := paperStore(t)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Check(canceled, id); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check on canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := s.Evolve(canceled, id, paperrepro.Accounting, paperrepro.CancelChange()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Evolve on canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := s.Snapshot(canceled, id); !errors.Is(err, context.Canceled) {
		t.Fatalf("Snapshot on canceled ctx = %v, want context.Canceled", err)
	}
	if err := s.Create(canceled, "other", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Create on canceled ctx = %v, want context.Canceled", err)
	}
}

// WithCacheCap bounds the per-choreography consistency cache: with a
// cap of 1 the paper scenario's two pairs cannot both stay resident,
// yet every answer (cached or recomputed) remains correct.
func TestCacheCapEviction(t *testing.T) {
	s := New(WithCacheCap(1))
	const id = "capped"
	if err := s.Create(ctx, id, paperSyncOps); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*bpel.Process{
		paperrepro.BuyerProcess(), paperrepro.AccountingProcess(), paperrepro.LogisticsProcess(),
	} {
		if _, err := s.RegisterParty(ctx, id, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		rep, err := s.Check(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Consistent() {
			t.Fatalf("round %d inconsistent: %+v", i, rep.Pairs)
		}
		e, err := s.entry(id)
		if err != nil {
			t.Fatal(err)
		}
		e.consMu.RLock()
		size := len(e.cons)
		e.consMu.RUnlock()
		if size > 1 {
			t.Fatalf("round %d cache size = %d, want <= cap 1", i, size)
		}
	}
	fresh, err := s.CheckUncached(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Consistent() {
		t.Fatalf("uncached recomputation disagrees: %+v", fresh.Pairs)
	}
}

// The If-Match precondition is enforced under the commit lock: of many
// concurrent writes pinned to the same snapshot version, exactly one
// wins and every other one fails with ErrConflict — no lost updates.
func TestPreconditionSingleWinnerUnderContention(t *testing.T) {
	s, id := paperStore(t)
	base, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	const contenders = 8
	var wg sync.WaitGroup
	var wins, conflicts atomic.Uint64
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := base.Version
			var err error
			if i%2 == 0 {
				_, err = s.PutParties(ctx, id, []*bpel.Process{paperrepro.AccountingProcess()}, &v)
			} else {
				_, err = s.UpdateParty(ctx, id, paperrepro.AccountingProcess(), &v)
			}
			switch {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrConflict):
				conflicts.Add(1)
			default:
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if wins.Load() != 1 || conflicts.Load() != contenders-1 {
		t.Fatalf("wins = %d, conflicts = %d, want 1/%d", wins.Load(), conflicts.Load(), contenders-1)
	}
	after, err := s.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if after.Version != base.Version+1 {
		t.Fatalf("version = %d, want exactly one bump from %d", after.Version, base.Version)
	}
}
