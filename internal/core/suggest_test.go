package core

import (
	"strings"
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/formula"
	"repro/internal/label"
	"repro/internal/mapping"
	"repro/internal/wsdl"
)

// suggestSetup builds a partner process, derives its public process
// and plans against a changed view.
func suggestSetup(t *testing.T, partner *bpel.Process, reg *wsdl.Registry, newView *afsa.Automaton, additive bool) (*Plan, *Suggester) {
	t.Helper()
	res, err := mapping.Derive(partner, reg)
	if err != nil {
		t.Fatal(err)
	}
	var plan *Plan
	if additive {
		plan, err = PlanAdditive(newView, res.Automaton, res.Table)
	} else {
		plan, err = PlanSubtractive(newView, res.Automaton, res.Table)
	}
	if err != nil {
		t.Fatal(err)
	}
	return plan, &Suggester{Private: partner, Registry: reg}
}

func TestSuggestExtendExistingPick(t *testing.T) {
	// Partner already uses a pick: the suggestion extends it instead
	// of widening a receive.
	partner := &bpel.Process{Name: "p", Owner: "B", Body: &bpel.Sequence{BlockName: "root", Children: []bpel.Activity{
		&bpel.Pick{BlockName: "pk", Branches: []bpel.OnMessage{
			{Partner: "A", Op: "x", Body: &bpel.Empty{BlockName: "ex"}},
			{Partner: "A", Op: "y", Body: &bpel.Empty{BlockName: "ey"}},
		}},
	}}}
	newView := branching("view", []string{"A#B#x"}, []string{"A#B#y"}, []string{"A#B#z"})
	plan, s := suggestSetup(t, partner, nil, newView, true)
	suggestions := s.Suggest(plan)
	if len(suggestions) != 1 {
		t.Fatalf("suggestions = %v", suggestions)
	}
	op, ok := suggestions[0].Op.(change.Composite)
	if !ok {
		t.Fatalf("op = %T, want Composite of AddPickBranch", suggestions[0].Op)
	}
	if len(op.Ops) != 1 {
		t.Fatalf("composite ops = %d", len(op.Ops))
	}
	add, ok := op.Ops[0].(change.AddPickBranch)
	if !ok || add.Branch.Op != "z" {
		t.Fatalf("op = %+v", op.Ops[0])
	}
	// Applying restores consistency.
	adapted, err := op.Apply(partner)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.Derive(adapted, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok2, err := afsa.Consistent(newView, res.Automaton)
	if err != nil || !ok2 {
		t.Fatalf("still inconsistent after pick extension: %v", err)
	}
}

func TestSuggestSentAdditionWithSwitch(t *testing.T) {
	// Partner decides internally between sending x and y; the change
	// adds a third mandatory option z — suggest a new switch case.
	partner := &bpel.Process{Name: "p", Owner: "B", Body: &bpel.Sequence{BlockName: "root", Children: []bpel.Activity{
		&bpel.Switch{BlockName: "sw", Cases: []bpel.Case{
			{Cond: "c1", Body: &bpel.Invoke{BlockName: "ix", Partner: "A", Op: "x"}},
		}, Else: &bpel.Invoke{BlockName: "iy", Partner: "A", Op: "y"}},
	}}}
	// The new view mandates that B can also send z.
	newView := branching("view", []string{"B#A#x"}, []string{"B#A#y"}, []string{"B#A#z"})
	newView.Annotate(newView.Start(), And3("B#A#x", "B#A#y", "B#A#z"))
	plan, s := suggestSetup(t, partner, nil, newView, true)
	suggestions := s.Suggest(plan)
	if len(suggestions) != 1 {
		t.Fatalf("suggestions = %v", suggestions)
	}
	add, ok := suggestions[0].Op.(change.AddSwitchCase)
	if !ok {
		t.Fatalf("op = %T, want AddSwitchCase: %v", suggestions[0].Op, suggestions[0])
	}
	adapted, err := add.Apply(partner)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.Derive(adapted, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Automaton.Accepts([]label.Label{lbl("B#A#z")}) {
		t.Fatalf("adapted partner cannot send z:\n%s", res.Automaton.DebugString())
	}
}

func TestSuggestRemovedDeletesActivity(t *testing.T) {
	// No loop involved: the partner must simply stop choosing y.
	partner := &bpel.Process{Name: "p", Owner: "B", Body: &bpel.Sequence{BlockName: "root", Children: []bpel.Activity{
		&bpel.Switch{BlockName: "sw", Cases: []bpel.Case{
			{Cond: "c1", Body: &bpel.Invoke{BlockName: "ix", Partner: "A", Op: "x"}},
		}, Else: &bpel.Invoke{BlockName: "iy", Partner: "A", Op: "y"}},
	}}}
	newView := branching("view", []string{"B#A#x"}) // y no longer supported
	plan, s := suggestSetup(t, partner, nil, newView, false)
	suggestions := s.Suggest(plan)
	if len(suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	del, ok := suggestions[0].Op.(change.Delete)
	if !ok {
		t.Fatalf("op = %T: %v", suggestions[0].Op, suggestions[0])
	}
	if !strings.Contains(del.Path.String(), "Invoke:iy") {
		t.Fatalf("delete path = %v", del.Path)
	}
}

func TestSuggestManualFallbackOnCycle(t *testing.T) {
	// The added continuation loops in B' — the synthesizer refuses and
	// the suggestion degrades to manual.
	partner := &bpel.Process{Name: "p", Owner: "B", Body: &bpel.Sequence{BlockName: "root", Children: []bpel.Activity{
		&bpel.Receive{BlockName: "rx", Partner: "A", Op: "x"},
	}}}
	// New view: x, or y followed by an unbounded y-loop.
	newView := afsa.New("view")
	q0 := newView.AddState()
	q1 := newView.AddState()
	q2 := newView.AddState()
	newView.SetStart(q0)
	newView.SetFinal(q1, true)
	newView.SetFinal(q2, true)
	newView.AddTransition(q0, lbl("A#B#x"), q1)
	newView.AddTransition(q0, lbl("A#B#y"), q2)
	newView.AddTransition(q2, lbl("A#B#y"), q2)
	plan, s := suggestSetup(t, partner, nil, newView, true)
	suggestions := s.Suggest(plan)
	if len(suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	for _, sg := range suggestions {
		if sg.Op != nil {
			t.Fatalf("cycle should force a manual suggestion, got %v", sg)
		}
		if sg.String() == "" {
			t.Fatal("empty suggestion string")
		}
	}
}

func TestSuggestBudgetFallback(t *testing.T) {
	partner := &bpel.Process{Name: "p", Owner: "B", Body: &bpel.Sequence{BlockName: "root", Children: []bpel.Activity{
		&bpel.Receive{BlockName: "rx", Partner: "A", Op: "x"},
	}}}
	newView := branching("view", []string{"A#B#x"}, []string{"A#B#y", "A#B#y2", "A#B#y3"})
	plan, s := suggestSetup(t, partner, nil, newView, true)
	s.MaxSynthesized = 1 // absurdly small budget
	suggestions := s.Suggest(plan)
	for _, sg := range suggestions {
		if sg.Op != nil {
			t.Fatalf("budget exhaustion should force manual, got %v", sg)
		}
	}
}

func TestSuggestionStringForms(t *testing.T) {
	withOp := Suggestion{Description: "do it", Op: change.Delete{Path: bpel.Path{"x"}}}
	manual := Suggestion{Description: "think about it"}
	if !strings.Contains(withOp.String(), "do it") || strings.Contains(withOp.String(), "manual") {
		t.Fatalf("String = %q", withOp.String())
	}
	if !strings.Contains(manual.String(), "manual") {
		t.Fatalf("String = %q", manual.String())
	}
}

// And3 builds a three-variable conjunction.
func And3(a, b, c string) *formula.Formula {
	return formula.And(formula.Var(a), formula.Var(b), formula.Var(c))
}
