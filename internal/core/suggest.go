package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/label"
	"repro/internal/wsdl"
)

// Suggestion is one proposed adaptation of the partner's private
// process. Since partner processes are autonomous the framework never
// applies suggestions silently (paper Sec. 3.1: "an automatic
// adaptation of private processes is generally not desired.
// Nevertheless the system should adequately assist process
// engineers"); Op is a ready-to-apply operation the engineer can
// accept, or nil when only a textual recommendation is possible.
type Suggestion struct {
	// Description explains the adaptation in engineer terms.
	Description string
	// Op is the executable change operation (nil = manual).
	Op change.Operation
}

func (s Suggestion) String() string {
	if s.Op != nil {
		return fmt.Sprintf("%s [%s]", s.Description, s.Op)
	}
	return s.Description + " [manual]"
}

// Suggester derives private-process adaptations from a propagation
// plan.
type Suggester struct {
	// Private is the partner's current private process.
	Private *bpel.Process
	// Registry resolves operation ownership and synchrony for the
	// synthesized fragments (may be nil).
	Registry *wsdl.Registry
	// MaxSynthesized bounds the size of synthesized fragments; beyond
	// it the suggestion degrades to manual. Zero means the default
	// (256 activities).
	MaxSynthesized int
}

// Suggest computes adaptations for every region of the plan
// (Secs. 5.2/5.3 step 3→4):
//
//   - an added *received* message widens an existing receive into a
//     pick, or extends an existing pick, with a branch synthesized
//     from the adapted public process B' (reproduces Fig. 14);
//   - an added *sent* message extends an enclosing switch with a case
//     synthesized from B', or falls back to a manual recommendation;
//   - a removed message inside a loop region replaces the loop block
//     by the bounded behavior synthesized from B' (reproduces
//     Fig. 18); other removals suggest deleting the affected branch.
func (s *Suggester) Suggest(plan *Plan) []Suggestion {
	var out []Suggestion
	owner := s.Private.Owner
	// Group added hints per state so one receive widens into a single
	// pick with all new alternatives.
	addedByState := map[afsa.StateID][]Hint{}
	var removed []Hint
	for _, h := range plan.Hints {
		if h.Added {
			addedByState[h.State] = append(addedByState[h.State], h)
		} else {
			removed = append(removed, h)
		}
	}
	states := make([]int, 0, len(addedByState))
	for q := range addedByState {
		states = append(states, int(q))
	}
	sort.Ints(states)
	for _, q := range states {
		out = append(out, s.suggestAdded(plan, afsa.StateID(q), addedByState[afsa.StateID(q)], owner)...)
	}
	for _, h := range removed {
		out = append(out, s.suggestRemoved(plan, h, owner))
	}
	return out
}

func (s *Suggester) suggestAdded(plan *Plan, state afsa.StateID, hints []Hint, owner string) []Suggestion {
	var received, sent []Hint
	for _, h := range hints {
		if h.Label.Receiver() == owner {
			received = append(received, h)
		} else {
			sent = append(sent, h)
		}
	}
	var out []Suggestion
	regionPaths := regionPathsFor(plan, state)

	if len(received) > 0 {
		out = append(out, s.suggestReceivedAdditions(plan, state, received, regionPaths))
	}
	for _, h := range sent {
		out = append(out, s.suggestSentAddition(plan, h, regionPaths))
	}
	return out
}

// suggestReceivedAdditions widens the receive (or pick) that handles
// the hint state's existing incoming messages.
func (s *Suggester) suggestReceivedAdditions(plan *Plan, state afsa.StateID, hints []Hint, regionPaths []bpel.Path) Suggestion {
	desc := fmt.Sprintf("support additionally receiving %s (state %d)", labelList(hints), state)

	// Branch bodies synthesized from B' after the added message.
	branches := make([]bpel.OnMessage, 0, len(hints))
	for _, h := range hints {
		body := s.synthesizeAfter(plan, state, h.Label)
		if body == nil {
			return Suggestion{Description: desc + "; continuation could not be synthesized"}
		}
		branches = append(branches, bpel.OnMessage{
			Partner: h.Label.Sender(),
			Op:      h.Label.Op(),
			Body:    body,
		})
	}

	// Prefer extending an existing pick in the region.
	if pickPath, ok := s.findInRegion(regionPaths, bpel.KindPick); ok {
		ops := make([]change.Operation, 0, len(branches))
		for _, b := range branches {
			ops = append(ops, change.AddPickBranch{Path: pickPath, Branch: b})
		}
		return Suggestion{
			Description: desc + fmt.Sprintf("; extend pick %s", pickPath),
			Op:          change.Composite{Label: "extend pick", Ops: ops},
		}
	}

	// Otherwise widen the receive that currently handles this state.
	if rcvPath, ok := s.findReceiveForState(plan, state, regionPaths); ok {
		return Suggestion{
			Description: desc + fmt.Sprintf("; widen receive %s into a pick", rcvPath),
			Op: change.ReplaceReceiveWithPick{
				Path:  rcvPath,
				Extra: branches,
			},
		}
	}
	return Suggestion{Description: desc + "; no receive or pick found in region " + pathList(regionPaths)}
}

func (s *Suggester) suggestSentAddition(plan *Plan, h Hint, regionPaths []bpel.Path) Suggestion {
	desc := fmt.Sprintf("optionally send %s (state %d)", h.Label, h.State)
	body := s.synthesizeAfter(plan, h.State, h.Label)
	if body == nil {
		return Suggestion{Description: desc + "; continuation could not be synthesized"}
	}
	caseBody := &bpel.Sequence{
		BlockName: "send " + h.Label.Op(),
		Children: []bpel.Activity{
			&bpel.Invoke{BlockName: h.Label.Op(), Partner: h.Label.Receiver(), Op: h.Label.Op(), Sync: s.isSync(h.Label)},
			body,
		},
	}
	if swPath, ok := s.findInRegion(regionPaths, bpel.KindSwitch); ok {
		return Suggestion{
			Description: desc + fmt.Sprintf("; add case to switch %s", swPath),
			Op: change.AddSwitchCase{
				Path: swPath,
				Case: bpel.Case{Cond: "new option " + h.Label.Op(), Body: caseBody},
			},
		}
	}
	return Suggestion{
		Description: desc + "; introduce a data-driven switch around region " + pathList(regionPaths),
	}
}

func (s *Suggester) suggestRemoved(plan *Plan, h Hint, owner string) Suggestion {
	regionPaths := regionPathsFor(plan, h.State)
	desc := fmt.Sprintf("stop relying on %s (state %d)", h.Label, h.State)

	// The paper's subtractive scenario: the removed behavior lives in
	// a loop — replace the loop block by the bounded behavior of B'.
	if loopPath, ok := s.findInRegion(regionPaths, bpel.KindWhile); ok {
		root, ok := plan.Counterpart[h.State]
		if ok {
			if frag := s.synthesize(plan.NewPartnerPublic, root); frag != nil {
				return Suggestion{
					Description: desc + fmt.Sprintf("; replace loop %s by its bounded unrolling", loopPath),
					Op:          change.Replace{Path: loopPath, New: frag},
				}
			}
		}
		return Suggestion{Description: desc + fmt.Sprintf("; bound loop %s manually", loopPath)}
	}

	// Otherwise: the activity emitting/receiving the removed message
	// has to go.
	if p, err := s.Private.FindFirst(func(a bpel.Activity) bool {
		return communicatesLabel(a, owner, h.Label)
	}); err == nil {
		return Suggestion{
			Description: desc + fmt.Sprintf("; delete activity %s", p),
			Op:          change.Delete{Path: p},
		}
	}
	return Suggestion{Description: desc + "; affected activity not found, adapt region " + pathList(regionPaths)}
}

// synthesizeAfter synthesizes the continuation fragment of B' after
// taking the added label from the counterpart of state.
func (s *Suggester) synthesizeAfter(plan *Plan, state afsa.StateID, l label.Label) bpel.Activity {
	root, ok := plan.Counterpart[state]
	if !ok {
		return nil
	}
	targets := plan.NewPartnerPublic.Step(root, l)
	if len(targets) != 1 {
		return nil
	}
	return s.synthesize(plan.NewPartnerPublic, targets[0])
}

// synthesize converts the acyclic part of automaton a rooted at q into
// a block-structured BPEL fragment for the suggester's process owner:
//
//   - a single outgoing message becomes a receive/invoke/reply,
//   - several received alternatives become a pick,
//   - several sent alternatives become a switch (an internal choice),
//   - a final state without continuation becomes a terminate (ending
//     the enclosing process exactly where the public process ends),
//   - a final state *with* continuation becomes a switch with an
//     empty otherwise branch (the owner may stop or continue).
//
// Cycles and oversized fragments yield nil (the suggestion then
// degrades to manual).
func (s *Suggester) synthesize(a *afsa.Automaton, q afsa.StateID) bpel.Activity {
	limit := s.MaxSynthesized
	if limit <= 0 {
		limit = 256
	}
	budget := limit
	onPath := map[afsa.StateID]bool{}
	act, ok := s.synth(a, q, onPath, &budget)
	if !ok {
		return nil
	}
	return act
}

func (s *Suggester) synth(a *afsa.Automaton, q afsa.StateID, onPath map[afsa.StateID]bool, budget *int) (bpel.Activity, bool) {
	if *budget <= 0 || onPath[q] {
		return nil, false // oversized or cyclic
	}
	*budget--
	onPath[q] = true
	defer delete(onPath, q)

	owner := s.Private.Owner
	ts := a.Transitions(q)
	final := a.IsFinal(q)
	suffix := fmt.Sprintf(" s%d", q)

	if len(ts) == 0 {
		if final {
			return &bpel.Terminate{BlockName: "end" + suffix}, true
		}
		return nil, false // dead end in the public process
	}

	branch := func(t afsa.Transition) (bpel.Activity, bool) {
		cont, ok := s.synth(a, t.To, onPath, budget)
		if !ok {
			return nil, false
		}
		act := s.commActivity(t.Label, owner, suffix)
		if act == nil {
			return nil, false
		}
		return &bpel.Sequence{
			BlockName: t.Label.Op() + suffix,
			Children:  []bpel.Activity{act, cont},
		}, true
	}

	var alternatives []bpel.Activity
	allReceived, allSent := true, true
	for _, t := range ts {
		b, ok := branch(t)
		if !ok {
			return nil, false
		}
		alternatives = append(alternatives, b)
		if t.Label.Receiver() == owner {
			allSent = false
		} else {
			allReceived = false
		}
	}

	var act bpel.Activity
	switch {
	case len(alternatives) == 1:
		act = alternatives[0]
	case allReceived:
		pick := &bpel.Pick{BlockName: "choice" + suffix}
		for i, t := range ts {
			pick.Branches = append(pick.Branches, bpel.OnMessage{
				Partner: t.Label.Sender(),
				Op:      t.Label.Op(),
				// Strip the leading receive from the branch: the pick
				// itself consumes the message.
				Body: stripLeadingComm(alternatives[i]),
			})
		}
		act = pick
	case allSent:
		// Exhaustive internal choice: the last alternative becomes the
		// otherwise branch (a switch without otherwise could fall
		// through, which the public process does not allow).
		sw := &bpel.Switch{BlockName: "choice" + suffix}
		last := len(ts) - 1
		for i := 0; i < last; i++ {
			sw.Cases = append(sw.Cases, bpel.Case{
				Cond: "option " + ts[i].Label.Op(),
				Body: alternatives[i],
			})
		}
		sw.Else = alternatives[last]
		act = sw
	default:
		return nil, false // mixed send/receive choice: not block-structurable here
	}

	if final {
		// The owner may also stop at this state.
		return &bpel.Switch{
			BlockName: "stop or continue" + suffix,
			Cases:     []bpel.Case{{Cond: "continue", Body: act}},
			Else:      &bpel.Terminate{BlockName: "stop" + suffix},
		}, true
	}
	return act, true
}

// commActivity renders the activity performing label l from the
// owner's perspective.
func (s *Suggester) commActivity(l label.Label, owner, suffix string) bpel.Activity {
	name := l.Op() + " msg" + suffix
	if l.Receiver() == owner {
		return &bpel.Receive{BlockName: name, Partner: l.Sender(), Op: l.Op()}
	}
	if l.Sender() == owner {
		// A reply answers a synchronous operation the owner provides.
		if s.Registry != nil {
			if op, ok := s.Registry.Lookup(owner, l.Op()); ok && op.Sync() {
				return &bpel.Reply{BlockName: name, Partner: l.Receiver(), Op: l.Op()}
			}
		}
		return &bpel.Invoke{BlockName: name, Partner: l.Receiver(), Op: l.Op(), Sync: s.isSync(l)}
	}
	return nil
}

// isSync reports whether l invokes a synchronous operation of its
// receiver. Synchronous operations appear in the automaton as a
// request/response transition pair; the synthesized Invoke must carry
// Sync only when the *registry* says so AND the response is folded
// into the same invoke — the synthesizer keeps request and response as
// separate transitions, so it always emits asynchronous invokes and a
// matching receive, which derives to the same automaton.
func (s *Suggester) isSync(label.Label) bool { return false }

func stripLeadingComm(a bpel.Activity) bpel.Activity {
	seq, ok := a.(*bpel.Sequence)
	if !ok || len(seq.Children) < 2 {
		return &bpel.Empty{BlockName: "done"}
	}
	rest := seq.Children[1:]
	if len(rest) == 1 {
		return rest[0]
	}
	return &bpel.Sequence{BlockName: seq.BlockName + " cont", Children: rest}
}

func communicatesLabel(a bpel.Activity, owner string, l label.Label) bool {
	switch t := a.(type) {
	case *bpel.Receive:
		return l.Receiver() == owner && t.Partner == l.Sender() && t.Op == l.Op()
	case *bpel.Invoke:
		return l.Sender() == owner && t.Partner == l.Receiver() && t.Op == l.Op()
	case *bpel.Reply:
		return l.Sender() == owner && t.Partner == l.Receiver() && t.Op == l.Op()
	}
	return false
}

// findInRegion returns the innermost region path whose addressed
// activity (or one of its ancestors listed in the region) has the
// given kind.
func (s *Suggester) findInRegion(regionPaths []bpel.Path, kind bpel.Kind) (bpel.Path, bool) {
	// Prefer longer (more specific) paths.
	sorted := append([]bpel.Path(nil), regionPaths...)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) > len(sorted[j]) })
	for _, p := range sorted {
		act, err := s.Private.Find(p)
		if err == nil && act.Kind() == kind {
			return p, true
		}
	}
	return nil, false
}

// findReceiveForState locates the private Receive handling one of the
// messages the public process currently expects at state (searching
// the region subtrees first, then the whole process).
func (s *Suggester) findReceiveForState(plan *Plan, state afsa.StateID, regionPaths []bpel.Path) (bpel.Path, bool) {
	owner := s.Private.Owner
	expects := map[string]bool{} // op names received at this state
	// plan.Counterpart keys are B states; B transitions are those of
	// the *current* partner public process. Use NewPartnerPublic's
	// counterpart to look at B' minus additions: simplest is to use
	// the hint state's outgoing labels in B', minus added ones —
	// but the original receive ops are exactly the received labels
	// present in both, so read them from NewPartnerPublic at the
	// counterpart and filter to non-added below if needed.
	if root, ok := plan.Counterpart[state]; ok {
		for _, t := range plan.NewPartnerPublic.Transitions(root) {
			if t.Label.Receiver() == owner {
				expects[t.Label.Op()] = true
			}
		}
	}
	match := func(a bpel.Activity) bool {
		r, ok := a.(*bpel.Receive)
		return ok && expects[r.Op]
	}
	// Region subtrees first.
	for _, rp := range regionPaths {
		act, err := s.Private.Find(rp)
		if err != nil {
			continue
		}
		var found bpel.Path
		bpel.Walk(act, func(a bpel.Activity, sub bpel.Path) bool {
			if found != nil {
				return false
			}
			if match(a) {
				// sub starts at the region root element; region path
				// already ends with that element.
				full := append(append(bpel.Path(nil), rp[:len(rp)-1]...), sub...)
				found = full
				return false
			}
			return true
		})
		if found != nil {
			if _, err := s.Private.Find(found); err == nil {
				return found, true
			}
		}
	}
	// Whole process as fallback.
	if p, err := s.Private.FindFirst(match); err == nil {
		return p, true
	}
	return nil, false
}

func regionPathsFor(plan *Plan, state afsa.StateID) []bpel.Path {
	var out []bpel.Path
	seen := map[string]bool{}
	for _, r := range plan.Regions {
		if r.Hint.State != state {
			continue
		}
		for _, p := range r.Paths {
			if !seen[p.String()] {
				seen[p.String()] = true
				out = append(out, p)
			}
		}
	}
	return out
}

func labelList(hints []Hint) string {
	parts := make([]string, len(hints))
	for i, h := range hints {
		parts[i] = string(h.Label)
	}
	return strings.Join(parts, ", ")
}

func pathList(paths []bpel.Path) string {
	parts := make([]string, len(paths))
	for i, p := range paths {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}
