package core

import (
	"repro/internal/afsa"
	"repro/internal/label"
)

// LiftForeign returns the inverse-homomorphism lift of a bilateral
// view: a copy of a with a self-loop for every foreign label at every
// state. The lifted automaton accepts exactly the words whose
// projection onto a's own alphabet lies in L(a) — the messages a
// partner exchanges with third parties are unconstrained by the
// bilateral change being propagated. Used by subtractive propagation
// planning when the partner talks to more parties than the change
// originator.
func LiftForeign(a *afsa.Automaton, foreign label.Set) *afsa.Automaton {
	out := a.Clone()
	out.Name = a.Name + "+foreign"
	for q := 0; q < out.NumStates(); q++ {
		for _, l := range foreign.Sorted() {
			out.AddTransition(afsa.StateID(q), l, afsa.StateID(q))
		}
	}
	return out
}
