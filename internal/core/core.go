// Package core implements the paper's primary contribution: the
// controlled-evolution framework for process choreographies.
//
//   - Classification of public process changes along the paper's two
//     dimensions (Sec. 4): additive vs. subtractive (Def. 5, via aFSA
//     difference) and invariant vs. variant (Def. 6, the propagation
//     criterion via intersection emptiness).
//   - Propagation planning for variant changes (Secs. 5.2/5.3): the
//     difference automaton, the partner's adapted public process, the
//     changed states found by parallel traversal, and — through the
//     mapping table of Sec. 3.3 — the private process regions a
//     process engineer has to touch.
//   - A suggestion engine that turns the located regions into ready-
//     to-apply change operations on the partner's private process
//     (the paper keeps this step manual for autonomy reasons; the
//     suggestions make the paper's step 5 verification loop testable).
package core

import (
	"fmt"

	"repro/internal/afsa"
)

// ChangeKind classifies a change along the paper's first dimension
// (Def. 5).
type ChangeKind int

// Change kinds. A change can add and remove message sequences at the
// same time (KindBoth); a change that leaves the public process
// language untouched is KindNeutral.
const (
	KindNeutral ChangeKind = iota
	KindAdditive
	KindSubtractive
	KindBoth
)

func (k ChangeKind) String() string {
	switch k {
	case KindNeutral:
		return "neutral"
	case KindAdditive:
		return "additive"
	case KindSubtractive:
		return "subtractive"
	case KindBoth:
		return "additive+subtractive"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// Additive reports whether the change adds message sequences.
func (k ChangeKind) Additive() bool { return k == KindAdditive || k == KindBoth }

// Subtractive reports whether the change removes message sequences.
func (k ChangeKind) Subtractive() bool { return k == KindSubtractive || k == KindBoth }

// ClassifyChange implements Def. 5 on the old and new public process
// of the change originator: the change is additive iff A' \ A accepts
// some word and subtractive iff A \ A' does. Following the definition
// ("addition (deletion) of potential message sequences"), emptiness
// here is language emptiness; annotations play their role in the
// variant/invariant dimension.
func ClassifyChange(oldPublic, newPublic *afsa.Automaton) ChangeKind {
	added := acceptsSomething(newPublic.Difference(oldPublic))
	removed := acceptsSomething(oldPublic.Difference(newPublic))
	switch {
	case added && removed:
		return KindBoth
	case added:
		return KindAdditive
	case removed:
		return KindSubtractive
	default:
		return KindNeutral
	}
}

func acceptsSomething(a *afsa.Automaton) bool {
	reach := a.Reachable()
	for _, q := range a.FinalStates() {
		if reach[q] {
			return true
		}
	}
	return false
}

// Scope classifies a change along the paper's second dimension
// (Def. 6).
type Scope int

// Scopes: an invariant change keeps the changed public process
// consistent with the partner (no propagation needed, Sec. 4.2); a
// variant change breaks consistency and must be propagated (Sec. 5).
const (
	ScopeInvariant Scope = iota
	ScopeVariant
)

func (s Scope) String() string {
	if s == ScopeInvariant {
		return "invariant"
	}
	return "variant"
}

// ClassifyScope implements Def. 6: the change transforming the
// originator's public view into newView is invariant for the partner
// with public process partnerB iff newView ∩ partnerB ≠ ∅ (annotated
// emptiness, i.e. bilateral consistency is preserved).
func ClassifyScope(newView, partnerB *afsa.Automaton) (Scope, error) {
	ok, err := afsa.Consistent(newView, partnerB)
	if err != nil {
		return ScopeVariant, err
	}
	if ok {
		return ScopeInvariant, nil
	}
	return ScopeVariant, nil
}

// Classification bundles both dimensions for one partner.
type Classification struct {
	Kind  ChangeKind
	Scope Scope
}

// Classify evaluates both dimensions of a change against one partner:
// oldView/newView are the partner's views of the originator's public
// process before and after the change, partnerB the partner's public
// process.
func Classify(oldView, newView, partnerB *afsa.Automaton) (Classification, error) {
	scope, err := ClassifyScope(newView, partnerB)
	if err != nil {
		return Classification{}, err
	}
	return Classification{
		Kind:  ClassifyChange(oldView, newView),
		Scope: scope,
	}, nil
}
