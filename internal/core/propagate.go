package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/label"
	"repro/internal/mapping"
)

// Hint records one observable difference between the partner's
// current public process B and its adapted version B', located by the
// parallel traversal of Sec. 5.2/5.3 step 3 ("comparable to
// bi-simulation").
type Hint struct {
	// State is the state of B where the difference becomes visible.
	State afsa.StateID
	// Label is the message that was added to (Added=true) or removed
	// from (Added=false) B's behavior at State.
	Label label.Label
	// Added distinguishes additive from subtractive hints.
	Added bool
}

func (h Hint) String() string {
	verb := "remove"
	if h.Added {
		verb = "add"
	}
	return fmt.Sprintf("%s %s at state %d", verb, h.Label, h.State)
}

// Region is a private-process area derived from a hint through the
// mapping table (Sec. 3.3).
type Region struct {
	Hint Hint
	// Blocks are the BPEL block names associated with the hint state
	// (the paper's Table 1 row).
	Blocks []string
	// Paths are the full block paths, innermost-first candidates for
	// the adaptation.
	Paths []bpel.Path
}

func (r Region) String() string {
	return fmt.Sprintf("%s → blocks {%s}", r.Hint, strings.Join(r.Blocks, ", "))
}

// Plan is the outcome of propagation planning for one partner
// (Secs. 5.2/5.3 steps 1–3). Applying the suggested private changes
// and re-deriving the public process (steps 4–5) is the caller's
// decision — partner processes are autonomous (Sec. 3.1).
type Plan struct {
	// Kind is additive or subtractive (the dimension that triggered
	// the plan).
	Kind ChangeKind
	// Diff is the difference automaton: the added message sequences
	// A'' = τ(A') \ B for additive changes (Fig. 13a), the removed
	// sequences B \ τ(A') for subtractive ones (Fig. 17a).
	Diff *afsa.Automaton
	// NewPartnerPublic is the adapted partner public process B'
	// (Fig. 13b / Fig. 17b): the basis for the private adaptations.
	NewPartnerPublic *afsa.Automaton
	// Hints are the state-level differences between B and B'.
	Hints []Hint
	// Regions map the hints into the partner's private process.
	Regions []Region
	// Counterpart maps each visited state of B to the first state of
	// NewPartnerPublic it was paired with during the parallel
	// traversal; the suggestion engine synthesizes replacement
	// fragments from these B' states.
	Counterpart map[afsa.StateID]afsa.StateID
}

// PlanAdditive executes steps 1–3 of Sec. 5.2 for one partner:
//
//  1. A” := τ_partner(A') \ B — the newly inserted sequences,
//  2. B'  := A” ∪ B — the adapted partner public process,
//  3. parallel traversal of B' against B to locate the states where
//     new transitions appear, mapped into private regions via tbl.
//
// newView is the partner's view of the originator's changed public
// process; partnerB the partner's current public process; tbl the
// mapping table produced when partnerB was derived.
func PlanAdditive(newView, partnerB *afsa.Automaton, tbl mapping.Table) (*Plan, error) {
	diff := newView.Difference(partnerB)
	diff.Name = fmt.Sprintf("(%s \\ %s)", newView.Name, partnerB.Name)
	newBRaw := diff.Union(partnerB)
	newB := newBRaw.Minimize()
	newB.Name = partnerB.Name + "'"
	hints, counterpart := detect(newB, partnerB, true)
	plan := &Plan{
		Kind:             KindAdditive,
		Diff:             diff.Minimize(),
		NewPartnerPublic: newB,
		Hints:            hints,
		Regions:          regions(hints, tbl),
		Counterpart:      counterpart,
	}
	plan.Diff.Name = diff.Name
	return plan, nil
}

// PlanSubtractive executes steps 1–3 of Sec. 5.3 for one partner:
//
//  1. removed := B \ τ_partner(A') — the sequences the originator no
//     longer supports (the paper's difference automaton, Fig. 17a),
//  2. B' := B \ removed — the adapted partner public process,
//  3. parallel traversal of B against B' to locate the states whose
//     transitions disappeared, mapped into private regions via tbl.
func PlanSubtractive(newView, partnerB *afsa.Automaton, tbl mapping.Table) (*Plan, error) {
	removed := partnerB.Difference(newView)
	removed.Name = fmt.Sprintf("(%s \\ %s)", partnerB.Name, newView.Name)
	newB := partnerB.Difference(removed).Minimize()
	newB.Name = partnerB.Name + "'"
	hints, counterpart := detect(partnerB, newB, false)
	plan := &Plan{
		Kind:             KindSubtractive,
		Diff:             removed.Minimize(),
		NewPartnerPublic: newB,
		Hints:            hints,
		Regions:          regions(hints, tbl),
		Counterpart:      counterpart,
	}
	plan.Diff.Name = removed.Name
	return plan, nil
}

// Propagate plans the propagation of a variant change to one partner,
// dispatching on the change kind (a change that both adds and removes
// sequences yields two plans).
func Propagate(kind ChangeKind, newView, partnerB *afsa.Automaton, tbl mapping.Table) ([]*Plan, error) {
	var plans []*Plan
	if kind.Additive() {
		p, err := PlanAdditive(newView, partnerB, tbl)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	if kind.Subtractive() {
		p, err := PlanSubtractive(newView, partnerB, tbl)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("core: nothing to propagate for a %s change", kind)
	}
	return plans, nil
}

func regions(hints []Hint, tbl mapping.Table) []Region {
	out := make([]Region, 0, len(hints))
	for _, h := range hints {
		out = append(out, Region{
			Hint:   h,
			Blocks: tbl.Blocks(h.State),
			Paths:  tbl.Paths(h.State),
		})
	}
	return out
}

// DetectAddedTransitions walks newB and oldB in parallel from their
// start states (the paper: "the difference automaton is traversed
// parallel to the original public process (comparable to
// bi-simulation)") and reports, per reachable oldB state, the labels
// newB offers that oldB does not — the messages the partner has to
// additionally support, attributed to the mapping-table state where
// they become visible.
func DetectAddedTransitions(oldB, newB *afsa.Automaton) []Hint {
	hints, _ := detect(newB, oldB, true)
	return hints
}

// DetectRemovedTransitions reports, per reachable oldB state, the
// labels oldB offers that newB no longer does — the messages the
// partner must stop relying on.
func DetectRemovedTransitions(oldB, newB *afsa.Automaton) []Hint {
	hints, _ := detect(oldB, newB, false)
	return hints
}

// detect walks lead and trail in parallel on their common labels and
// emits a hint whenever lead has a transition trail lacks. The hint
// state belongs to the partner's *current* public process B: for added
// hints B is the trail (hintOnTrail), for removed hints the lead. The
// counterpart map sends each B state to the first B' state it was
// paired with. Deterministic inputs keep their state identity; only
// nondeterministic inputs are determinized (which would detach the
// mapping table — the pipeline always hands in minimized DFAs).
func detect(lead, trail *afsa.Automaton, hintOnTrail bool) ([]Hint, map[afsa.StateID]afsa.StateID) {
	dl, dt := lead, trail
	if !dl.Deterministic() {
		dl = dl.Determinize()
	}
	if !dt.Deterministic() {
		dt = dt.Determinize()
	}
	type pair struct{ l, t afsa.StateID }
	counterpart := map[afsa.StateID]afsa.StateID{}
	note := func(p pair) {
		// Record B-state → B'-state.
		b, nb := p.l, p.t
		if hintOnTrail {
			b, nb = p.t, p.l
		}
		if _, ok := counterpart[b]; !ok {
			counterpart[b] = nb
		}
	}
	seen := map[pair]bool{}
	var hints []Hint
	hintSeen := map[string]bool{}
	if dl.Start() == afsa.None || dt.Start() == afsa.None {
		return nil, counterpart
	}
	queue := []pair{{dl.Start(), dt.Start()}}
	seen[queue[0]] = true
	note(queue[0])
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		trailSteps := map[label.Label]afsa.StateID{}
		for _, tr := range dt.Transitions(cur.t) {
			trailSteps[tr.Label] = tr.To
		}
		for _, tr := range dl.Transitions(cur.l) {
			to, ok := trailSteps[tr.Label]
			if !ok {
				hintState := cur.l
				if hintOnTrail {
					hintState = cur.t
				}
				key := fmt.Sprintf("%d|%s", hintState, tr.Label)
				if !hintSeen[key] {
					hintSeen[key] = true
					hints = append(hints, Hint{State: hintState, Label: tr.Label, Added: hintOnTrail})
				}
				continue
			}
			next := pair{tr.To, to}
			if !seen[next] {
				seen[next] = true
				note(next)
				queue = append(queue, next)
			}
		}
	}
	sort.Slice(hints, func(i, j int) bool {
		if hints[i].State != hints[j].State {
			return hints[i].State < hints[j].State
		}
		return hints[i].Label < hints[j].Label
	})
	return hints, counterpart
}
