package core

import (
	"testing"

	"repro/internal/afsa"
	"repro/internal/bpel"
	"repro/internal/change"
	"repro/internal/formula"
	"repro/internal/label"
	"repro/internal/mapping"
)

func lbl(s string) label.Label { return label.MustParse(s) }

func chain(name string, labels ...string) *afsa.Automaton {
	a := afsa.New(name)
	cur := a.AddState()
	a.SetStart(cur)
	for _, l := range labels {
		next := a.AddState()
		a.AddTransition(cur, lbl(l), next)
		cur = next
	}
	a.SetFinal(cur, true)
	return a
}

// branching builds an automaton with the given words.
func branching(name string, words ...[]string) *afsa.Automaton {
	a := afsa.New(name)
	start := a.AddState()
	a.SetStart(start)
	for _, w := range words {
		cur := start
		for _, l := range w {
			next := a.AddState()
			a.AddTransition(cur, lbl(l), next)
			cur = next
		}
		a.SetFinal(cur, true)
	}
	return a.Minimize()
}

func TestClassifyChangeKinds(t *testing.T) {
	base := branching("base", []string{"A#B#x"})
	wider := branching("wider", []string{"A#B#x"}, []string{"A#B#y"})
	narrower := branching("narrower")
	_ = narrower
	other := branching("other", []string{"A#B#y"})

	tests := []struct {
		name     string
		old, new *afsa.Automaton
		want     ChangeKind
	}{
		{"neutral", base, base.Clone(), KindNeutral},
		{"additive", base, wider, KindAdditive},
		{"subtractive", wider, base, KindSubtractive},
		{"both", base, other, KindBoth},
	}
	for _, tt := range tests {
		if got := ClassifyChange(tt.old, tt.new); got != tt.want {
			t.Errorf("%s: ClassifyChange = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestChangeKindPredicates(t *testing.T) {
	if !KindAdditive.Additive() || KindAdditive.Subtractive() {
		t.Fatal("KindAdditive predicates wrong")
	}
	if !KindBoth.Additive() || !KindBoth.Subtractive() {
		t.Fatal("KindBoth predicates wrong")
	}
	if KindNeutral.Additive() || KindNeutral.Subtractive() {
		t.Fatal("KindNeutral predicates wrong")
	}
	for _, k := range []ChangeKind{KindNeutral, KindAdditive, KindSubtractive, KindBoth} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

func TestClassifyScope(t *testing.T) {
	// Partner B requires x (mandatory); a new view without x is
	// variant, one with x invariant.
	partner := chain("partner", "A#B#x")
	partner.Annotate(partner.Start(), formula.Var("A#B#x"))

	viewWithX := branching("view", []string{"A#B#x"}, []string{"A#B#y"})
	scope, err := ClassifyScope(viewWithX, partner)
	if err != nil {
		t.Fatal(err)
	}
	if scope != ScopeInvariant {
		t.Fatalf("scope = %v, want invariant", scope)
	}

	viewWithoutX := branching("view2", []string{"A#B#y"})
	scope, err = ClassifyScope(viewWithoutX, partner)
	if err != nil {
		t.Fatal(err)
	}
	if scope != ScopeVariant {
		t.Fatalf("scope = %v, want variant", scope)
	}
	if ScopeInvariant.String() == "" || ScopeVariant.String() == "" {
		t.Fatal("empty scope strings")
	}
}

func TestClassifyBoth(t *testing.T) {
	oldView := branching("old", []string{"A#B#x"})
	newView := branching("new", []string{"A#B#x"}, []string{"A#B#y"})
	partner := branching("partner", []string{"A#B#x"})
	cl, err := Classify(oldView, newView, partner)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Kind != KindAdditive || cl.Scope != ScopeInvariant {
		t.Fatalf("Classify = %+v", cl)
	}
}

func TestDetectAddedTransitions(t *testing.T) {
	oldB := branching("old", []string{"A#B#x", "A#B#z"})
	newB := branching("new", []string{"A#B#x", "A#B#z"}, []string{"A#B#x", "A#B#w"}, []string{"A#B#v"})
	hints := DetectAddedTransitions(oldB, newB)
	if len(hints) != 2 {
		t.Fatalf("hints = %v, want 2", hints)
	}
	// v appears at the start state, w after x.
	foundV, foundW := false, false
	for _, h := range hints {
		if !h.Added {
			t.Fatalf("hint %v not marked added", h)
		}
		switch h.Label {
		case lbl("A#B#v"):
			foundV = true
			if h.State != oldB.Start() {
				t.Fatalf("v attributed to state %d, want start", h.State)
			}
		case lbl("A#B#w"):
			foundW = true
		}
	}
	if !foundV || !foundW {
		t.Fatalf("hints = %v", hints)
	}
}

func TestDetectRemovedTransitions(t *testing.T) {
	oldB := branching("old", []string{"A#B#x", "A#B#z"}, []string{"A#B#y"})
	newB := branching("new", []string{"A#B#x", "A#B#z"})
	hints := DetectRemovedTransitions(oldB, newB)
	if len(hints) != 1 {
		t.Fatalf("hints = %v, want 1", hints)
	}
	if hints[0].Added || hints[0].Label != lbl("A#B#y") {
		t.Fatalf("hint = %v", hints[0])
	}
	if hints[0].String() == "" {
		t.Fatal("empty hint string")
	}
}

func TestDetectNoDifference(t *testing.T) {
	a := branching("a", []string{"A#B#x"})
	if hints := DetectAddedTransitions(a, a.Clone()); len(hints) != 0 {
		t.Fatalf("spurious hints: %v", hints)
	}
	if hints := DetectRemovedTransitions(a, a.Clone()); len(hints) != 0 {
		t.Fatalf("spurious hints: %v", hints)
	}
}

func TestLiftForeign(t *testing.T) {
	view := chain("view", "A#B#x")
	foreign := label.NewSet(lbl("A#L#f"))
	lifted := LiftForeign(view, foreign)
	// Foreign messages may interleave anywhere.
	if !lifted.Accepts([]label.Label{lbl("A#L#f"), lbl("A#B#x"), lbl("A#L#f")}) {
		t.Fatal("lift does not allow foreign interleaving")
	}
	// The projection constraint is kept.
	if lifted.Accepts([]label.Label{lbl("A#L#f")}) {
		t.Fatal("lift dropped the bilateral constraint")
	}
	// Original untouched.
	if view.Accepts([]label.Label{lbl("A#L#f"), lbl("A#B#x")}) {
		t.Fatal("LiftForeign mutated its input")
	}
}

func TestPropagateDispatch(t *testing.T) {
	oldB := branching("old", []string{"A#B#x"})
	newView := branching("new", []string{"A#B#x"}, []string{"A#B#y"})
	plans, err := Propagate(KindAdditive, newView, oldB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || plans[0].Kind != KindAdditive {
		t.Fatalf("plans = %v", plans)
	}
	plans, err = Propagate(KindBoth, newView, oldB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("KindBoth plans = %d, want 2", len(plans))
	}
	if _, err := Propagate(KindNeutral, newView, oldB, nil); err == nil {
		t.Fatal("neutral propagation accepted")
	}
}

func TestPlanAdditiveBasics(t *testing.T) {
	partnerB := branching("B", []string{"B#A#x"})
	newView := branching("view", []string{"B#A#x"}, []string{"B#A#y"})
	plan, err := PlanAdditive(newView, partnerB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Diff.Accepts([]label.Label{lbl("B#A#y")}) {
		t.Fatalf("diff misses the added word:\n%s", plan.Diff.DebugString())
	}
	if plan.Diff.Accepts([]label.Label{lbl("B#A#x")}) {
		t.Fatal("diff contains an existing word")
	}
	for _, w := range [][]label.Label{{lbl("B#A#x")}, {lbl("B#A#y")}} {
		if !plan.NewPartnerPublic.Accepts(w) {
			t.Fatalf("B' misses %v", w)
		}
	}
	if len(plan.Hints) != 1 || plan.Hints[0].Label != lbl("B#A#y") {
		t.Fatalf("hints = %v", plan.Hints)
	}
	if _, ok := plan.Counterpart[partnerB.Start()]; !ok {
		t.Fatal("counterpart missing for start state")
	}
}

func TestPlanSubtractiveBasics(t *testing.T) {
	partnerB := branching("B", []string{"B#A#x"}, []string{"B#A#y"})
	newView := branching("view", []string{"B#A#x"})
	plan, err := PlanSubtractive(newView, partnerB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Diff.Accepts([]label.Label{lbl("B#A#y")}) {
		t.Fatal("removed-sequence automaton misses the removed word")
	}
	if plan.NewPartnerPublic.Accepts([]label.Label{lbl("B#A#y")}) {
		t.Fatal("B' still accepts the removed word")
	}
	if !plan.NewPartnerPublic.Accepts([]label.Label{lbl("B#A#x")}) {
		t.Fatal("B' lost the surviving word")
	}
	if len(plan.Hints) != 1 || plan.Hints[0].Added {
		t.Fatalf("hints = %v", plan.Hints)
	}
}

// TestShiftClassification checks the claim accompanying the Shift
// operation: reordering parallel branches is neutral for the public
// process, reordering sequence steps is both additive and subtractive.
func TestShiftClassification(t *testing.T) {
	flowProc := &bpel.Process{Name: "p", Owner: "A", Body: &bpel.Flow{BlockName: "f", Branches: []bpel.Activity{
		&bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"},
		&bpel.Invoke{BlockName: "iy", Partner: "B", Op: "y"},
	}}}
	seqProc := &bpel.Process{Name: "p", Owner: "A", Body: &bpel.Sequence{BlockName: "s", Children: []bpel.Activity{
		&bpel.Invoke{BlockName: "ix", Partner: "B", Op: "x"},
		&bpel.Invoke{BlockName: "iy", Partner: "B", Op: "y"},
	}}}

	classify := func(p *bpel.Process, parentElem string) ChangeKind {
		t.Helper()
		before, err := mapping.Derive(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		shifted, err := (change.Shift{
			Path:   bpel.Path{parentElem, "Invoke:ix"},
			Anchor: "Invoke:iy",
			After:  true,
		}).Apply(p)
		if err != nil {
			t.Fatal(err)
		}
		after, err := mapping.Derive(shifted, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ClassifyChange(before.Automaton, after.Automaton)
	}

	if kind := classify(flowProc, "Flow:f"); kind != KindNeutral {
		t.Fatalf("flow shift = %v, want neutral", kind)
	}
	if kind := classify(seqProc, "Sequence:s"); kind != KindBoth {
		t.Fatalf("sequence shift = %v, want additive+subtractive", kind)
	}
}
