// Package choreo is a Go implementation of the controlled-evolution
// framework for process choreographies of Rinderle, Wombacher and
// Reichert ("On the Controlled Evolution of Process Choreographies",
// ICDE 2006).
//
// A choreography is a set of partner processes interacting by message
// exchange. Each party implements a *private* process (a
// block-structured BPEL subset, see Process); its observable behavior
// is the *public* process, an annotated finite state automaton
// (Automaton) derived automatically together with a mapping table
// relating automaton states back to BPEL blocks (DerivePublic).
// Bilateral consistency — a non-empty annotated intersection of the
// partners' mutual views — guarantees deadlock-free interaction. The
// automaton kernel interns message labels into dense integer symbols
// (internal/label's Interner; one interner is shared per choreography
// in the service layer), so the hot operators — determinization,
// minimization, products, the viability fixpoint — run on integers
// and allocation-lean scratch buffers instead of hashing label
// strings; see ARCHITECTURE.md's "Compute kernel" section and
// BENCH_afsa.json for the recorded before/after numbers.
//
// When a party changes its private process, the framework recreates
// the public view, classifies the change (additive/subtractive ×
// invariant/variant) and, for variant changes, computes for every
// affected partner a propagation plan: the difference automaton, the
// adapted partner public process, the private-process regions to
// touch, and ready-to-apply adaptation suggestions. The partner stays
// autonomous: suggestions are applied explicitly.
//
// # Quick start
//
//	reg := choreo.NewRegistry()
//	reg.AddOperation("A", "pingOp", false)
//	reg.AddOperation("B", "pongOp", false)
//
//	server := &choreo.Process{Name: "server", Owner: "A",
//		Body: &choreo.Sequence{BlockName: "srv", Children: []choreo.Activity{
//			&choreo.Receive{BlockName: "ping", Partner: "B", Op: "pingOp"},
//			&choreo.Invoke{BlockName: "pong", Partner: "B", Op: "pongOp"},
//		}}}
//	client := &choreo.Process{Name: "client", Owner: "B",
//		Body: &choreo.Sequence{BlockName: "cli", Children: []choreo.Activity{
//			&choreo.Invoke{BlockName: "ping", Partner: "A", Op: "pingOp"},
//			&choreo.Receive{BlockName: "pong", Partner: "A", Op: "pongOp"},
//		}}}
//
//	c := choreo.NewChoreography(reg)
//	c.AddParty(server)
//	c.AddParty(client)
//	report, _ := c.Check()          // bilateral consistency of all pairs
//	evo, _ := c.Evolve("A", choreo.Delete{Path: choreo.Path{"Sequence:srv", "Invoke:pong"}})
//	// evo.Impacts[0].Classification → subtractive, variant
//	// evo.Impacts[0].Suggestions    → how the client should adapt
//
// The runnable examples under examples/ walk through the paper's
// procurement scenario end to end, including both propagation
// scenarios (Secs. 5.2 and 5.3), service discovery and instance
// migration.
//
// # Service layer (choreod, API v2)
//
// Beyond the in-process library, the framework runs as a long-lived
// service that owns choreography state and serves concurrent
// check/evolve/migrate traffic:
//
//	st  := choreo.NewChoreographyStore(             // sharded COW store
//		choreo.WithStoreShards(32),
//		choreo.WithStoreCacheCap(4096))
//	srv := choreo.NewChoreoServer(st)               // JSON HTTP API (/v2/ + /v1/ shim)
//	http.ListenAndServe(":8080", srv.Handler())
//
// or, from the command line, "choreoctl serve". The store
// (ChoreographyStore) keeps every choreography behind an atomically
// published copy-on-write snapshot: readers proceed without locks,
// writers commit under optimistic concurrency (ErrStoreConflict when
// the analyzed base version is stale). Every store operation takes a
// leading context.Context; the expensive check and evolve paths honor
// cancellation mid-computation. The expensive aFSA work is amortized
// across requests — bilateral views are memoized per party version and
// bilateral-consistency results are cached keyed by the two party
// versions (optionally bounded by WithStoreCacheCap), so a commit
// invalidates exactly the pairs the changed party touches.
//
// The v2 HTTP API treats a change the way the paper does — as one
// transaction: an evolve call carries a list of operations (EvolveOp)
// applied in order and classified once against the combined delta, and
// a batch endpoint registers or updates many parties in one commit.
// Snapshot versions travel as ETags; writes accept If-Match and answer
// 412 {code: "stale_version"} when the precondition misses, while an
// apply-suggestion race on a changed partner stays 409
// {code: "conflict"}. Listings paginate with limit/page_token cursors,
// and every error is a uniform {code, message, details} envelope
// (ChoreoCode* constants, matched with ChoreoErrIs). ChoreoClient is
// the typed, context-first Go client; the /v1/ surface remains served
// as a compatibility shim for deployed clients. See internal/server
// for the wire types and docs/api.md for the full wire reference with
// curl examples and the v1→v2 migration table.
//
// The store is durable on request: OpenChoreographyStore with
// WithStoreJournal(dir) write-ahead logs every store mutation into
// dir and recovers the previous state (snapshot + log tail, torn
// tails truncated) on open, re-deriving all automata into one shared
// symbol space per choreography. Server-layer ephemera — discovery
// publications, pending evolve analyses — are not journaled.
// Checkpoint compacts the log — online via POST /v2/admin/checkpoint
// (ChoreoClient.Checkpoint), or on SIGTERM when serving with
// "choreoctl serve -data dir". See docs/persistence.md for file
// formats and recovery semantics.
//
// # Bulk instance migration
//
// After a change is committed, every in-flight conversation must be
// classified: an instance migrates to the new schema iff its trace
// replays on the new public process into a viable state (the
// ADEPT-style compliance criterion the paper points to in Sec. 8).
// The store answers per-party what-ifs (ChoreographyStore.Migrate,
// optionally against a pending evolution), and sweeps whole
// populations with the bulk engine:
//
//	job, err := st.MigrateAll(ctx, "procurement", 8)   // 8 workers
//	v := job.Snapshot()                                // progress counters
//	stuck := job.Stranded()                            // who cannot move, and why
//
// A sweep iterates the choreography's instance shards on a bounded
// worker pool — no choreography-wide lock — classifying through
// per-party compliance checkers that are determinized once per party
// version and shared by all workers. The job (BulkMigrationJob) is
// idempotent and resumable: its identity is (choreography, committed
// version), re-running a completed job returns the finished report
// untouched, and a canceled sweep keeps whole committed shards so the
// next run finishes the remainder. StartMigration is the asynchronous
// variant behind POST /v2/choreographies/{id}/migrations, which the
// client wraps as StartMigration/WaitMigration/MigrationStranded and
// the CLI as "choreoctl migrate". See ARCHITECTURE.md for where the
// engine sits in the system.
package choreo
