package choreo

import (
	"fmt"
	"testing"

	"repro/internal/afsa"
	"repro/internal/gen"
	"repro/internal/mapping"
	"repro/internal/runtime"
)

// TestBilateralVsGlobal is experiment D-7 (criterion ablation): on
// generated two-party choreographies — both intact and mutated — the
// paper's bilateral consistency criterion is compared against global
// deadlock-freedom established by exhaustive execution.
//
// The criterion is *sound*: whenever it reports consistency, execution
// is deadlock-free — any violation fails the test. It is also
// *conservative*: an internal choice whose branch begins with a
// receive makes the partner's support of that receive mandatory even
// though an angelic scheduler (which resolves internal choices only at
// send time) never walks into the trap. Such cases are counted and
// reported, not failed; EXPERIMENTS.md records the measured
// conservatism rate.
func TestBilateralVsGlobal(t *testing.T) {
	consistent, inconsistentConfirmed, conservative := 0, 0, 0
	for seed := int64(0); seed < 40; seed++ {
		conv := gen.MustGenerate(seed, gen.DefaultParams())
		ra, err := mapping.Derive(conv.A, conv.Registry)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Half of the runs mutate party A without propagation.
		procA := conv.A
		if seed%2 == 1 {
			op, err := gen.RandomChange(seed*7, conv.A, conv.Registry)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			mutated, err := op.Apply(conv.A)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			procA = mutated
			ra, err = mapping.Derive(procA, conv.Registry)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		rb, err := mapping.Derive(conv.B, conv.Registry)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		ok, err := afsa.Consistent(ra.Automaton.View("B"), rb.Automaton.View("A"))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		sys, err := runtime.NewSystem(map[string]*afsa.Automaton{
			"A": ra.Automaton, "B": rb.Automaton,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := sys.Explore(1 << 18)
		deadlockFree := res.DeadlockFree() && !res.Truncated

		switch {
		case ok && !deadlockFree:
			// Soundness violation: the paper's central claim broken.
			t.Fatalf("seed %d: bilaterally consistent but execution fails: %v", seed, res.Failures)
		case ok:
			consistent++
		case !deadlockFree:
			inconsistentConfirmed++
		default:
			conservative++
		}
	}
	if consistent == 0 || inconsistentConfirmed == 0 {
		t.Fatalf("workload not discriminating: consistent=%d confirmed-inconsistent=%d",
			consistent, inconsistentConfirmed)
	}
	t.Logf("D-7: consistent=%d, inconsistent confirmed by execution=%d, conservative flags=%d",
		consistent, inconsistentConfirmed, conservative)
}

// TestControlledEvolutionPreventsDeadlock is experiment D-4 as a
// correctness statement: committing a variant change without
// propagation makes execution fail; following the framework's
// propagation keeps every seed deadlock-free.
func TestControlledEvolutionPreventsDeadlock(t *testing.T) {
	for _, scenario := range []struct {
		name string
		op   ChangeOperation
	}{
		{"cancel (Sec. 5.2)", PaperCancelChange()},
		{"tracking limit (Sec. 5.3)", PaperTrackingLimitChange()},
	} {
		c, err := PaperScenario()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Evolve("A", scenario.op)
		if err != nil {
			t.Fatalf("%s: %v", scenario.name, err)
		}

		// Uncontrolled: commit without propagation.
		uncontrolled := map[string]*Automaton{"A": rep.NewPublic}
		for _, name := range []string{"B", "L"} {
			p, _ := c.Party(name)
			uncontrolled[name] = p.Public
		}
		sys, err := NewSystem(uncontrolled)
		if err != nil {
			t.Fatal(err)
		}
		if res := sys.Explore(0); res.DeadlockFree() {
			t.Fatalf("%s: uncontrolled evolution did not fail", scenario.name)
		}

		// Controlled: apply the suggested buyer adaptation first.
		var im PartnerImpact
		for _, i := range rep.Impacts {
			if i.Partner == "B" {
				im = i
			}
		}
		_, res, err := c.AdaptPartner("B", ExecutableSuggestions(im.Suggestions))
		if err != nil {
			t.Fatalf("%s: %v", scenario.name, err)
		}
		controlled := map[string]*Automaton{"A": rep.NewPublic, "B": res.Automaton}
		p, _ := c.Party("L")
		controlled["L"] = p.Public
		sys, err = NewSystem(controlled)
		if err != nil {
			t.Fatal(err)
		}
		if exec := sys.Explore(0); !exec.DeadlockFree() {
			t.Fatalf("%s: controlled evolution still fails: %v", scenario.name, exec.Failures)
		}
	}
}

// TestPublicAPISurface exercises the quick-start shown in the package
// documentation.
func TestPublicAPISurface(t *testing.T) {
	reg := NewRegistry()
	if err := reg.AddOperation("A", "pingOp", false); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddOperation("B", "pongOp", false); err != nil {
		t.Fatal(err)
	}
	server := &Process{Name: "server", Owner: "A",
		Body: &Sequence{BlockName: "srv", Children: []Activity{
			&Receive{BlockName: "ping", Partner: "B", Op: "pingOp"},
			&Invoke{BlockName: "pong", Partner: "B", Op: "pongOp"},
		}}}
	client := &Process{Name: "client", Owner: "B",
		Body: &Sequence{BlockName: "cli", Children: []Activity{
			&Invoke{BlockName: "ping", Partner: "A", Op: "pingOp"},
			&Receive{BlockName: "pong", Partner: "A", Op: "pongOp"},
		}}}
	c := NewChoreography(reg)
	if err := c.AddParty(server); err != nil {
		t.Fatal(err)
	}
	if err := c.AddParty(client); err != nil {
		t.Fatal(err)
	}
	report, err := c.Check()
	if err != nil || !report.Consistent() {
		t.Fatalf("check: %v", err)
	}
	evo, err := c.Evolve("A", Delete{Path: Path{"Sequence:srv", "Invoke:pong"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(evo.Impacts) != 1 || evo.Impacts[0].Classification.Scope != ScopeVariant {
		t.Fatalf("impacts = %+v", evo.Impacts)
	}
	if !evo.Impacts[0].Classification.Kind.Subtractive() {
		t.Fatalf("kind = %v", evo.Impacts[0].Classification.Kind)
	}

	// XML round trip through the public API.
	data, err := MarshalProcessXML(server)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalProcessXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "server" {
		t.Fatal("XML round trip lost the name")
	}

	// Formula/label helpers.
	l := NewLabel("A", "B", "x")
	if l.Sender() != "A" {
		t.Fatal("label helper broken")
	}
	f, err := ParseFormula("A#B#x AND A#B#y")
	if err != nil || f.IsTrue() {
		t.Fatal("formula helper broken")
	}
	if _, err := ParseLabel("garbage#"); err == nil {
		t.Fatal("ParseLabel accepted garbage")
	}
	if fmt.Sprint(Epsilon) != "ε" {
		t.Fatal("epsilon rendering broken")
	}
}
