package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtureFindings pins the gate's findings on the seeded fixture
// to exact positions: the three canonical allocation shapes are each
// caught where they happen, and the clean function stays silent.
func TestFixtureFindings(t *testing.T) {
	findings, err := Check([]string{"../choreolint/testdata/src/allocfree"})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		line, col int
		fn        string
		detail    string
	}{
		{14, 2, "EscapingClosure", "moved to heap: x"},
		{15, 9, "EscapingClosure", "func literal escapes to heap"},
		{23, 13, "SliceGrowth", "make([]int, 0, 4) escapes to heap"},
		{34, 14, "InterfaceBoxing", "v escapes to heap"},
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for i, w := range want {
		f := findings[i]
		if f.Line != w.line || f.Col != w.col || f.Func != w.fn || f.Detail != w.detail {
			t.Errorf("finding %d: got %d:%d %s %q, want %d:%d %s %q",
				i, f.Line, f.Col, f.Func, f.Detail, w.line, w.col, w.fn, w.detail)
		}
		if !strings.HasSuffix(f.File, "fixture.go") {
			t.Errorf("finding %d: file %q, want fixture.go", i, f.File)
		}
		if s := f.String(); !strings.Contains(s, "[allocgate]") || !strings.Contains(s, marker) {
			t.Errorf("finding %d formats as %q; want the analyzer tag and marker", i, s)
		}
	}
}

// TestHotPathsClean is the production gate: the marked hot paths must
// be allocation-free, and the markers must actually exist (an edit
// that drops one would otherwise pass vacuously).
func TestHotPathsClean(t *testing.T) {
	pkgs := []string{"repro/internal/afsa", "repro/internal/store"}
	findings, err := Check(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("marked hot path allocates: %s", f)
	}

	listed, err := listPackages(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	marked := map[string]bool{}
	for _, pkg := range listed {
		mfs, err := markedFuncs(pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, mf := range mfs {
			marked[mf.Name] = true
		}
	}
	for _, want := range []string{"Stepper.StepSym", "hashIDs", "sortEdgesBySym", "pendingInst.advance"} {
		if !marked[want] {
			t.Errorf("expected %s marker on %s, found none", marker, want)
		}
	}
}

// TestMatchEscapes exercises the diagnostic parser on synthetic
// compiler output, including the lines it must ignore.
func TestMatchEscapes(t *testing.T) {
	marked := []markedFunc{{Name: "F", File: mustAbs(t, "x.go"), From: 10, To: 20}}
	out := strings.Join([]string{
		"# repro/internal/example",
		"x.go:12:5: make([]int, n) escapes to heap",
		"x.go:15:3: moved to heap: buf",
		"x.go:25:1: make([]int, n) escapes to heap", // outside the range
		"x.go:11:2: n does not escape",              // not an allocation
		"y.go:12:5: make([]int, n) escapes to heap", // other file
	}, "\n")
	got := matchEscapes(out, "", marked)
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(got), got)
	}
	if got[0].Line != 12 || got[1].Line != 15 {
		t.Errorf("got lines %d, %d; want 12, 15", got[0].Line, got[1].Line)
	}
}

// mustAbs resolves p the same way matchEscapes resolves compiler
// paths.
func mustAbs(t *testing.T, p string) string {
	t.Helper()
	abs, err := filepath.Abs(p)
	if err != nil {
		t.Fatal(err)
	}
	return abs
}
