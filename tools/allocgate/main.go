// Command allocgate verifies the repository's //choreolint:allocfree
// contract: a function carrying that marker in its doc comment must
// not allocate. The hot paths it guards — Stepper.StepSym on the
// per-event replay loop, determinize/minimize inner-loop helpers,
// applyIngest's per-event advance — run millions of times per scenario
// under locks; one heap allocation there shows up directly in
// BenchmarkScenarioConsistency's allocs/op.
//
// Rather than re-deriving escape analysis, allocgate asks the compiler
// for its verdict: it runs `go build -gcflags=<importpath>=-m=1` per
// package containing marked functions and flags every "escapes to
// heap" / "moved to heap" diagnostic whose position falls inside a
// marked function's declaration. The -m output replays from the build
// cache, so a clean run after the first is nearly free.
//
//	go run ./tools/allocgate ./...
//
// Known limit: -m reports escape sites, not every allocation. Append
// growth of an already-heap-allocated slice and writes into existing
// maps produce no -m line; the marker therefore proves "no NEW
// escaping values", which is the property the benchmarks depend on.
// Exit status 1 when any marked function allocates.
package main

import (
	"fmt"
	"os"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	findings, err := Check(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocgate: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
