package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// marker is the doc-comment directive that puts a function under the
// gate.
const marker = "//choreolint:allocfree"

// markedFunc is one //choreolint:allocfree declaration: the file and
// the inclusive line range of the whole declaration (doc comment
// excluded — an escape diagnostic can only point into the signature or
// body).
type markedFunc struct {
	Name     string
	File     string // absolute path
	From, To int    // inclusive line range
}

// Finding is one allocation inside a marked function, formatted like a
// choreolint diagnostic so the same CI problem matcher picks it up.
type Finding struct {
	File   string // as printed by the compiler (module-relative)
	Line   int
	Col    int
	Func   string
	Detail string // the compiler's message, e.g. "make([]int, n) escapes to heap"
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: allocation in %s function %s: %s [allocgate]",
		f.File, f.Line, f.Col, marker, f.Func, f.Detail)
}

// listedPackage is the slice of `go list -json` output the gate reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Module     *struct{ Dir string }
}

// Check gates the packages matched by patterns and returns the
// findings sorted by file, line, column.
func Check(patterns []string) ([]Finding, error) {
	pkgs, err := listPackages(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		marked, err := markedFuncs(pkg)
		if err != nil {
			return nil, err
		}
		if len(marked) == 0 {
			continue
		}
		out, err := escapeOutput(pkg.ImportPath)
		if err != nil {
			return nil, err
		}
		base := ""
		if pkg.Module != nil {
			base = pkg.Module.Dir
		}
		findings = append(findings, matchEscapes(out, base, marked)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return findings, nil
}

func listPackages(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// markedFuncs parses one package's files and returns its
// //choreolint:allocfree declarations.
func markedFuncs(pkg listedPackage) ([]markedFunc, error) {
	var out []markedFunc
	fset := token.NewFileSet()
	for _, name := range pkg.GoFiles {
		path := filepath.Join(pkg.Dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			hit := false
			for _, c := range fd.Doc.List {
				if strings.TrimSpace(c.Text) == marker {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				name = recvTypeName(fd.Recv.List[0].Type) + "." + name
			}
			out = append(out, markedFunc{
				Name: name,
				File: path,
				From: fset.Position(fd.Name.Pos()).Line,
				To:   fset.Position(fd.End()).Line,
			})
		}
	}
	return out, nil
}

func recvTypeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr:
		return recvTypeName(x.X)
	case *ast.IndexListExpr:
		return recvTypeName(x.X)
	}
	return "?"
}

// escapeOutput compiles one package with escape-analysis diagnostics
// enabled and returns the compiler's stderr. The diagnostics replay
// from the build cache on repeat runs.
func escapeOutput(importPath string) (string, error) {
	cmd := exec.Command("go", "build", "-gcflags="+importPath+"=-m=1", importPath)
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -gcflags=-m=1 %s: %v\n%s", importPath, err, buf.String())
	}
	return buf.String(), nil
}

// escapeRE matches one positioned compiler diagnostic.
var escapeRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// matchEscapes pairs escape diagnostics with the marked declarations
// they fall inside. The compiler prints paths relative to the module
// root; base resolves them (empty base: resolve against the working
// directory).
func matchEscapes(out, base string, marked []markedFunc) []Finding {
	var findings []Finding
	for _, line := range strings.Split(out, "\n") {
		m := escapeRE.FindStringSubmatch(strings.TrimSpace(strings.TrimPrefix(line, "#")))
		if m == nil {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		abs := m[1]
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(base, abs)
		}
		var err error
		if abs, err = filepath.Abs(abs); err != nil {
			continue
		}
		for _, mf := range marked {
			if mf.File == abs && mf.From <= lineNo && lineNo <= mf.To {
				findings = append(findings, Finding{
					File: m[1], Line: lineNo, Col: colNo,
					Func: mf.Name, Detail: m[4],
				})
				break
			}
		}
	}
	return findings
}
