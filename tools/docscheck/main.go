// Command docscheck keeps docs/api.md honest: it extracts every
// "METHOD /path" route the document mentions and fails when one of
// them is absent from the server's route table (the mux.HandleFunc
// registrations in internal/server). Run from the repository root;
// wired into CI as `go run ./tools/docscheck`.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	// routeReg matches one route registration in the server sources.
	routeReg = regexp.MustCompile(`mux\.HandleFunc\("([A-Z]+) ([^"]+)"`)
	// docReg matches one route mention in the docs: an HTTP method
	// followed by an absolute path (curl URLs carry a host and never
	// start with "/", so they do not match).
	docReg = regexp.MustCompile("(GET|POST|PUT|DELETE|PATCH)\\s+(/[^\\s`)|,]+)")
	// placeholder collapses path parameters so `{id}` in the docs
	// matches `{id}` (or any other name) in the route table.
	placeholder = regexp.MustCompile(`\{[^}]*\}`)
)

// normalize canonicalizes one route for comparison: drop the query
// part, trailing punctuation and parameter names.
func normalize(method, path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimRight(path, ".,;:")
	path = placeholder.ReplaceAllString(path, "{}")
	return method + " " + path
}

func serverRoutes(dir string) (map[string]bool, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	routes := map[string]bool{}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, m := range routeReg.FindAllStringSubmatch(string(data), -1) {
			routes[normalize(m[1], m[2])] = true
		}
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("no route registrations found under %s", dir)
	}
	return routes, nil
}

func docRoutes(file string) (map[string]bool, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	routes := map[string]bool{}
	for _, m := range docReg.FindAllStringSubmatch(string(data), -1) {
		routes[normalize(m[1], m[2])] = true
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("no routes found in %s", file)
	}
	return routes, nil
}

func main() {
	served, err := serverRoutes("internal/server")
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	documented, err := docRoutes("docs/api.md")
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	var missing, undocumented []string
	for route := range documented {
		if !served[route] {
			missing = append(missing, route)
		}
	}
	for route := range served {
		if !documented[route] {
			undocumented = append(undocumented, route)
		}
	}
	sort.Strings(missing)
	sort.Strings(undocumented)
	// Undocumented routes are reported but tolerated — the hard
	// guarantee is that the docs never describe a route the server
	// does not serve.
	for _, route := range undocumented {
		fmt.Printf("docscheck: note: served but not in docs/api.md: %s\n", route)
	}
	if len(missing) > 0 {
		for _, route := range missing {
			fmt.Fprintf(os.Stderr, "docscheck: docs/api.md references unserved route: %s\n", route)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d documented routes all present in the route table\n", len(documented))
}
