// Command docscheck keeps the route docs honest: it extracts every
// "METHOD /path" route that the files in docFiles mention and fails
// when one of them is absent from the server's route table (the
// mux.HandleFunc registrations in internal/server) — or when a
// served route is documented nowhere.
// Run from the repository root; wired into CI as
// `go run ./tools/docscheck`.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	// routeReg matches one route registration in the server sources.
	routeReg = regexp.MustCompile(`mux\.HandleFunc\("([A-Z]+) ([^"]+)"`)
	// docReg matches one route mention in the docs: an HTTP method
	// followed by an absolute path (curl URLs carry a host and never
	// start with "/", so they do not match).
	docReg = regexp.MustCompile("(GET|POST|PUT|DELETE|PATCH)\\s+(/[^\\s`)|,]+)")
	// placeholder collapses path parameters so `{id}` in the docs
	// matches `{id}` (or any other name) in the route table.
	placeholder = regexp.MustCompile(`\{[^}]*\}`)
)

// normalize canonicalizes one route for comparison: drop the query
// part, trailing punctuation and parameter names.
func normalize(method, path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimRight(path, ".,;:")
	path = placeholder.ReplaceAllString(path, "{}")
	return method + " " + path
}

func serverRoutes(dir string) (map[string]bool, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	routes := map[string]bool{}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, m := range routeReg.FindAllStringSubmatch(string(data), -1) {
			routes[normalize(m[1], m[2])] = true
		}
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("no route registrations found under %s", dir)
	}
	return routes, nil
}

// docFiles are the documents whose route mentions must exist in the
// server; docs/api.md is additionally the reference the route table
// is diffed against.
var docFiles = []string{"docs/api.md", "docs/persistence.md", "docs/ingest.md", "docs/resilience.md"}

// docRoutes maps each found route to the files mentioning it.
func docRoutes(files []string) (map[string][]string, error) {
	routes := map[string][]string{}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		found := 0
		for _, m := range docReg.FindAllStringSubmatch(string(data), -1) {
			route := normalize(m[1], m[2])
			if len(routes[route]) == 0 || routes[route][len(routes[route])-1] != file {
				routes[route] = append(routes[route], file)
			}
			found++
		}
		if found == 0 {
			return nil, fmt.Errorf("no routes found in %s", file)
		}
	}
	return routes, nil
}

func main() {
	served, err := serverRoutes("internal/server")
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	documented, err := docRoutes(docFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	var missing, undocumented []string
	for route := range documented {
		if !served[route] {
			missing = append(missing, route)
		}
	}
	for route := range served {
		if len(documented[route]) == 0 {
			undocumented = append(undocumented, route)
		}
	}
	sort.Strings(missing)
	sort.Strings(undocumented)
	// Both directions gate: the docs never describe a route the
	// server does not serve, and every served route appears in at
	// least one of docFiles.
	for _, route := range undocumented {
		fmt.Fprintf(os.Stderr, "docscheck: served but not documented in %v: %s\n", docFiles, route)
	}
	for _, route := range missing {
		fmt.Fprintf(os.Stderr, "docscheck: %v reference unserved route: %s\n", documented[route], route)
	}
	if len(missing)+len(undocumented) > 0 {
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d documented routes all present in the route table\n", len(documented))
}
