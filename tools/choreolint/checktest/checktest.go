// Package checktest runs one analyzer over a seeded-violation fixture
// package and diffs its findings against `// want "regexp"` comments
// in the fixture source — the analysistest idiom, rebuilt on the
// standard toolchain. Fixtures live under tools/choreolint/testdata/src
// so module-wide patterns (./..., gofmt, go vet) skip them, yet they
// are real, compiling packages: the loader shells out to
// `go list -export -deps -json`, which compiles the fixture's import
// tree through the build cache and hands back the export-data files
// the type-checker needs — the same inputs the go vet protocol gives
// the production driver, so a fixture exercises the analyzer exactly
// as CI will run it.
//
// A want comment asserts one finding on its own line:
//
//	s.commitMu.Lock() // want "commitMu acquired while persistMu"
//
// Every want must be matched by a reported diagnostic on that line
// and every diagnostic must match a want; either direction failing
// fails the test.
package checktest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/tools/choreolint/analysis"
	"repro/tools/choreolint/analysis/summary"
	"repro/tools/choreolint/load"
	"repro/tools/choreolint/passes"
)

// listedPackage is the slice of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
}

// wantRE extracts the quoted regexps of one want comment: double
// quotes or backticks (the latter spare escaping in patterns that
// match parentheses).
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Fixture runs a over the fixture package named name under
// tools/choreolint/testdata/src and checks its findings against the
// fixture's want comments. It is called from the per-analyzer test
// packages (tools/choreolint/passes/<name>), whose working directory
// the testdata path is resolved against.
func Fixture(t *testing.T, name string, a *analysis.Analyzer) {
	t.Helper()
	unit, err := loadFixture(filepath.Join("..", "..", "testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(unit.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", name, unit.TypeErrors[0])
	}
	sum := summary.Compute(&summary.Context{
		Fset:      unit.Fset,
		Files:     unit.Files,
		Pkg:       unit.Pkg,
		TypesInfo: unit.TypesInfo,
	}, passes.Collectors())
	diags, err := analysis.Run([]*analysis.Analyzer{a}, unit.Fset, unit.Files, unit.Pkg, unit.TypesInfo, sum)
	if err != nil {
		t.Fatal(err)
	}
	diff(t, unit, diags)
}

// loadFixture resolves the fixture's import tree with the go command
// and type-checks it from export data.
func loadFixture(dir string) (*load.Unit, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=Dir,ImportPath,Export,GoFiles", "./"+filepath.ToSlash(dir))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", dir, err, stderr.String())
	}
	exportFor := map[string]string{}
	var target *listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exportFor[p.ImportPath] = p.Export
		}
		if p.Dir == absDir {
			target = &p
		}
	}
	if target == nil {
		return nil, fmt.Errorf("go list did not return a package for %s", dir)
	}
	files := make([]string, len(target.GoFiles))
	for i, f := range target.GoFiles {
		files[i] = filepath.Join(target.Dir, f)
	}
	return load.Package(&load.Config{
		ImportPath:  target.ImportPath,
		GoFiles:     files,
		PackageFile: exportFor,
	})
}

// expectation is one want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// diff pairs diagnostics with want comments and reports both
// directions of mismatch.
func diff(t *testing.T, unit *load.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, file := range unit.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, unit, c)...)
			}
		}
	}
	for _, d := range diags {
		posn := unit.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s [%s]", posn, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants reads the `// want "re" ["re" ...]` expectations of one
// comment, anchored to the comment's line.
func parseWants(t *testing.T, unit *load.Unit, c *ast.Comment) []*expectation {
	t.Helper()
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return nil
	}
	posn := unit.Fset.Position(c.Pos())
	var out []*expectation
	for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
		pattern := m[1]
		if m[2] != "" {
			pattern = m[2]
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", posn, pattern, err)
		}
		out = append(out, &expectation{file: posn.Filename, line: posn.Line, re: re})
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment carries no quoted regexp", posn)
	}
	return out
}
