// Command choreolint is the repository's invariant linter: a suite of
// static analyzers for the concurrency, durability, and wire contracts
// the store's correctness depends on (see docs/lint.md for the
// catalog). It speaks the `go vet -vettool` protocol, so the go
// command drives it package by package with full type information and
// build caching:
//
//	go build -o /tmp/choreolint ./tools/choreolint
//	go vet -vettool=/tmp/choreolint ./...
//
// Invoked with package patterns instead of a .cfg file it re-executes
// itself through go vet, so `go run ./tools/choreolint ./...` works
// from the repository root. `choreolint help` lists the analyzers.
//
// The vettool protocol (shared with x/tools' unitchecker, which this
// driver deliberately mirrors so the binary is a drop-in vettool):
//
//	-V=full    print an executable fingerprint for the build cache
//	-flags     print supported flags as JSON
//	unit.cfg   analyze the single package described by the JSON config
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"

	"repro/tools/choreolint/analysis"
	"repro/tools/choreolint/analysis/summary"
	"repro/tools/choreolint/load"
	"repro/tools/choreolint/passes"
)

// config mirrors the JSON compilation-unit description the go command
// hands a vettool (the unitchecker.Config wire contract). Fields the
// driver does not read are listed anyway so the schema is visible in
// one place.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("choreolint: ")
	args := os.Args[1:]
	// The go command forwards declared vet flags (today: -json) ahead
	// of the unit's .cfg argument.
	jsonOut := false
	for len(args) > 0 {
		switch arg := args[0]; {
		case arg == "-json" || arg == "--json" || arg == "-json=true" || arg == "--json=true":
			jsonOut = true
			args = args[1:]
		case arg == "-json=false" || arg == "--json=false":
			args = args[1:]
		default:
			goto parsed
		}
	}
parsed:
	switch {
	case len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full"):
		printVersion()
	case len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags"):
		printFlags()
	case len(args) >= 1 && args[0] == "help":
		printHelp()
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(checkUnit(args[0], jsonOut))
	case len(args) >= 1:
		os.Exit(rerunUnderGoVet(args, jsonOut))
	default:
		printHelp()
		os.Exit(2)
	}
}

// printVersion implements -V=full: the go command caches vet results
// keyed on this fingerprint, so it must change whenever the binary
// does — a content hash of the executable, in the format the protocol
// expects.
func printVersion() {
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(self)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel choreolint buildID=%x\n", self, h.Sum(nil))
}

// printFlags implements -flags: the go command asks for the supported
// flag set before forwarding any user-supplied vet flags.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	data, err := json.MarshalIndent([]jsonFlag{
		{Name: "V", Bool: true, Usage: "print version and exit"},
		{Name: "flags", Bool: true, Usage: "print analyzer flags in JSON"},
		{Name: "json", Bool: true, Usage: "emit JSON output instead of text diagnostics"},
	}, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func printHelp() {
	fmt.Println("choreolint checks the repository's cross-cutting invariants.")
	fmt.Println()
	fmt.Println("Usage: choreolint [package pattern ...]   (runs via go vet)")
	fmt.Println()
	fmt.Println("Analyzers (suppress one finding with a '//lint:ignore choreolint/<name> reason' comment):")
	for _, a := range passes.All() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("  %-18s %s\n", a.Name, doc)
	}
}

// rerunUnderGoVet turns a direct `choreolint ./...` invocation into
// the real thing: go vet drives this same binary as its vettool.
func rerunUnderGoVet(args []string, jsonOut bool) int {
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	cmd := exec.Command("go", append(vetArgs, args...)...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Fatal(err)
	}
	return 0
}

// checkUnit analyzes the single compilation unit described by the
// config file, printing findings to stderr (or JSON to stdout); it
// returns the process exit code (1 when findings exist, as go vet
// expects; JSON mode always exits 0, mirroring unitchecker).
//
// Dependency units arrive with VetxOnly set: the go command wants
// only the package's exported facts. For packages of this module the
// summary engine's facts are computed and written for real — that is
// the channel that makes cross-package calls visible to the
// interprocedural passes — while standard-library and external
// dependencies get the empty facts file and stay on the fast path.
func checkUnit(cfgFile string, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	inModule := cfg.ModulePath != "" &&
		(cfg.ImportPath == cfg.ModulePath || strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/"))
	if cfg.VetxOnly && !inModule {
		writeVetx(&cfg, nil)
		return 0
	}
	unit, err := load.Package(&load.Config{
		ImportPath:  cfg.ImportPath,
		GoFiles:     cfg.GoFiles,
		ImportMap:   cfg.ImportMap,
		PackageFile: cfg.PackageFile,
		GoVersion:   cfg.GoVersion,
	})
	if err == nil && len(unit.TypeErrors) > 0 {
		err = unit.TypeErrors[0]
	}
	if err != nil {
		writeVetx(&cfg, nil)
		if cfg.SucceedOnTypecheckFailure {
			return 0 // the compiler will report the real problem
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}
	sum := summary.Compute(&summary.Context{
		Fset:      unit.Fset,
		Files:     unit.Files,
		Pkg:       unit.Pkg,
		TypesInfo: unit.TypesInfo,
		Imports:   &vetxImporter{cfg: &cfg},
	}, passes.Collectors())
	facts, err := sum.Encode()
	if err != nil {
		log.Fatal(err)
	}
	writeVetx(&cfg, facts)
	if cfg.VetxOnly {
		return 0
	}
	diags, err := analysis.Run(passes.All(), unit.Fset, unit.Files, unit.Pkg, unit.TypesInfo, sum)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		printJSONDiags(&cfg, unit, diags)
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [choreolint/%s]\n", unit.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printJSONDiags emits the unitchecker JSON shape — import path →
// analyzer → diagnostics — which `go vet -json` aggregates across
// packages.
func printJSONDiags(cfg *config, unit *load.Unit, diags []analysis.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		name := "choreolint/" + d.Analyzer
		byAnalyzer[name] = append(byAnalyzer[name], jsonDiag{
			Posn:    unit.Fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	data, err := json.MarshalIndent(map[string]map[string][]jsonDiag{cfg.ImportPath: byAnalyzer}, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	os.Stdout.Write([]byte("\n"))
}

// vetxImporter resolves dependency summaries from the facts files the
// go command threads through PackageVetx; per-package decoding is
// cached by the summary context.
type vetxImporter struct {
	cfg *config
}

func (v *vetxImporter) Facts(pkgPath string) *summary.File {
	file, ok := v.cfg.PackageVetx[pkgPath]
	if !ok {
		return nil
	}
	data, err := os.ReadFile(file)
	if err != nil || len(data) == 0 {
		return nil
	}
	f, err := summary.Decode(data)
	if err != nil {
		log.Fatalf("decoding summary facts of %s: %v", pkgPath, err)
	}
	return f
}

// writeVetx satisfies the protocol's facts output: the go command
// caches the facts file alongside the unit's vet result and threads
// it to dependent units via PackageVetx.
func writeVetx(cfg *config, facts []byte) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
		log.Fatal(err)
	}
}
