// Package snapshotimmut enforces the store's publish-then-freeze
// contract: data of a type marked //choreolint:frozen (store.Snapshot,
// afsa.Automaton, the interner's view slices) must never be written —
// field assignment, slice/map element store, delete — once it can be
// shared. The readers' whole lock-free story (snapshots behind an
// atomic pointer, automata shared across goroutines, interner views
// handed out without copying) depends on it.
//
// Construction still has to write, so the analyzer reasons about
// freshness instead of banning writes outright. A write is allowed
// when its root is provably fresh in the writing function: a local
// built from a composite literal, new, make, or a call to a function
// whose summary proves every return is freshly constructed (clone and
// Derive-style constructors, discovered interprocedurally, across
// packages via the vetx summary files). A write whose root is a
// parameter or receiver is not reported locally; instead it becomes a
// written-parameter-slot fact in the function's summary, and every
// call site passing a non-fresh argument into such a slot is reported
// — that is how a helper three calls deep that scribbles on a
// published snapshot surfaces at the call that leaked the snapshot to
// it. Functions marked //choreolint:builder (the commit path:
// rebuildAll-style rebuilders, restore/replay constructors, the
// automaton's documented mutators) are exempt and contribute no write
// facts; the marker is the audited escape hatch.
//
// Limits: freshness is shallow — a fresh struct's reference fields may
// still alias shared data, so builder-style constructors must deep-copy
// the containers they intend to fill (clone does). Aliasing through
// locals other than direct copies, and arguments bound into plain
// function values, are invisible. Method values are approximated: a
// bound receiver flowing into a receiver-writing method is checked,
// the unbound arguments are not.
package snapshotimmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/choreolint/analysis"
	"repro/tools/choreolint/analysis/summary"
)

// Analyzer reports writes that can reach published frozen data.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotimmut",
	Doc:  "no writes reach //choreolint:frozen types outside builders or freshly constructed values",
	Run:  run,
}

// returnsFresh marks a function whose every return statement yields
// freshly constructed values — its results are safe write roots at
// call sites.
const returnsFresh = 1 << iota

// Collector computes each function's snapshotimmut summary: the
// parameter slots through which it (transitively) writes frozen data,
// the frozen type keys it reaches, and the returnsFresh bit.
var Collector = &summary.Collector{
	Name: "snapshotimmut",
	Scan: func(c *summary.Context, fn *types.Func, decl *ast.FuncDecl, cur summary.Lookup) summary.Fact {
		a := &funcAnalysis{
			info:    c.TypesInfo,
			graph:   c.Graph,
			frozen:  c.MarkedTypes("frozen"),
			builder: c.MarkedFuncObjs("builder")[fn],
			cur:     cur,
			fn:      fn,
			decl:    decl,
		}
		return a.analyze()
	},
}

func run(pass *analysis.Pass) error {
	frozen := pass.Summary.MarkedTypes("frozen")
	if len(frozen) == 0 {
		return nil
	}
	builders := pass.Summary.MarkedFuncObjs("builder")
	graph := pass.Summary.Graph()
	for fn, decl := range graph.Decls {
		a := &funcAnalysis{
			info:    pass.TypesInfo,
			graph:   graph,
			frozen:  frozen,
			builder: builders[fn],
			cur:     pass.Summary.Lookup("snapshotimmut"),
			fn:      fn,
			decl:    decl,
			report:  pass.Reportf,
		}
		a.analyze()
	}
	return nil
}

// funcAnalysis is one function's freshness-and-write walk, shared by
// the summary collector (report nil: collect facts) and the analyzer
// run (report set: emit diagnostics).
type funcAnalysis struct {
	info    *types.Info
	graph   *summary.Graph
	frozen  map[string]bool
	builder bool
	cur     summary.Lookup
	fn      *types.Func
	decl    *ast.FuncDecl
	report  func(pos token.Pos, format string, args ...any)

	fact summary.Fact

	slots     map[*types.Var]int        // fn's receiver+params → slot index
	paramish  map[*types.Var]bool       // params/results/receivers of fn and closures
	assigns   map[*types.Var][]ast.Expr // local var → assigned expressions (nil entry = opaque)
	freshMemo map[*types.Var]int        // 0 unknown, 1 fresh, 2 not, 3 in progress
}

func (a *funcAnalysis) analyze() summary.Fact {
	if a.decl == nil || a.decl.Body == nil {
		return summary.Fact{}
	}
	a.collectVars()
	a.walk()
	a.scanReturns()
	if a.builder {
		// A builder's writes are sanctioned; exporting its write-set
		// would flag its legitimate call sites. Only freshness survives.
		return summary.Fact{Bits: a.fact.Bits & returnsFresh}
	}
	return a.fact
}

// collectVars indexes the function's parameter slots (receiver first),
// marks every parameter/result of the declaration and its closures as
// non-fresh, and gathers each local's assigned expressions.
func (a *funcAnalysis) collectVars() {
	a.slots = map[*types.Var]int{}
	a.paramish = map[*types.Var]bool{}
	a.assigns = map[*types.Var][]ast.Expr{}
	a.freshMemo = map[*types.Var]int{}
	sig := a.fn.Type().(*types.Signature)
	slot := 0
	if recv := sig.Recv(); recv != nil {
		a.slots[recv] = slot
		a.paramish[recv] = true
		slot++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		a.slots[sig.Params().At(i)] = slot
		a.paramish[sig.Params().At(i)] = true
		slot++
	}
	for i := 0; i < sig.Results().Len(); i++ {
		a.paramish[sig.Results().At(i)] = false // named results are locals
	}
	markFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := a.info.Defs[name].(*types.Var); ok {
					a.paramish[v] = true
				}
			}
		}
	}
	record := func(name *ast.Ident, rhs ast.Expr) {
		var v *types.Var
		if def, ok := a.info.Defs[name].(*types.Var); ok {
			v = def
		} else if use, ok := a.info.Uses[name].(*types.Var); ok {
			v = use
		}
		if v == nil || a.paramish[v] {
			return
		}
		a.assigns[v] = append(a.assigns[v], rhs)
	}
	ast.Inspect(a.decl, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			markFieldList(x.Type.Params)
			markFieldList(x.Type.Results)
		case *ast.AssignStmt:
			switch {
			case len(x.Lhs) == len(x.Rhs):
				for i, lhs := range x.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						record(id, x.Rhs[i])
					}
				}
			case len(x.Rhs) == 1:
				for _, lhs := range x.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						record(id, x.Rhs[0])
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				switch {
				case len(x.Values) == len(x.Names):
					record(name, x.Values[i])
				case len(x.Values) == 1:
					record(name, x.Values[0])
				}
				// var x T with no value is a fresh zero value: no
				// assignment recorded, freshness defaults to true.
			}
		case *ast.RangeStmt:
			// Range variables alias the container's elements; opaque.
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					record(id, nil)
				}
			}
		}
		return true
	})
}

// freshVar reports whether v is provably fresh: a local whose every
// assignment is a freshly constructed value. Parameters, receivers,
// globals, fields, and range/alias bindings are not.
func (a *funcAnalysis) freshVar(v *types.Var) bool {
	if v == nil || a.paramish[v] || v.IsField() {
		return false
	}
	// Locals only: the variable must be declared inside this function.
	if v.Pos() < a.decl.Pos() || v.Pos() > a.decl.End() {
		return false
	}
	switch a.freshMemo[v] {
	case 1:
		return true
	case 2:
		return false
	case 3:
		return true // cycle of copies among fresh candidates
	}
	a.freshMemo[v] = 3
	fresh := true
	for _, rhs := range a.assigns[v] {
		if rhs == nil || !a.freshExpr(rhs) {
			fresh = false
			break
		}
	}
	if fresh {
		a.freshMemo[v] = 1
	} else {
		a.freshMemo[v] = 2
	}
	return fresh
}

// freshExpr reports whether e evaluates to freshly constructed data:
// a composite literal (or its address), new, make, a copy of a fresh
// local, a conversion of one, or a call to a returns-fresh function.
func (a *funcAnalysis) freshExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, lit := ast.Unparen(x.X).(*ast.CompositeLit)
			return lit
		}
	case *ast.Ident:
		switch obj := a.info.ObjectOf(x).(type) {
		case *types.Var:
			return a.freshVar(obj)
		case *types.Nil:
			return true // nil aliases nothing
		}
	case *ast.CallExpr:
		return a.callFresh(x)
	}
	return false
}

// callFresh reports whether a call (or conversion) yields fresh data.
func (a *funcAnalysis) callFresh(call *ast.CallExpr) bool {
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion is the identity on the underlying data.
		if len(call.Args) == 1 {
			return a.freshExpr(call.Args[0])
		}
		return false
	}
	switch callee := analysis.CalleeOf(a.info, call).(type) {
	case *types.Builtin:
		return callee.Name() == "new" || callee.Name() == "make"
	case *types.Func:
		return a.cur(callee).Bits&returnsFresh != 0
	}
	return false
}

// scanReturns sets the returnsFresh bit when every return statement of
// a result-bearing function yields only fresh values. Results of inert
// type — scalars like StateID, error — cannot carry frozen data and do
// not count against freshness, so a (value, err) constructor keeps the
// bit through its error returns.
func (a *funcAnalysis) scanReturns() {
	sig := a.fn.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return
	}
	inert := func(t types.Type) bool {
		t = types.Unalias(t)
		if _, ok := t.Underlying().(*types.Basic); ok {
			return true
		}
		return types.Identical(t, errorType)
	}
	fresh := true
	sawReturn := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // a closure's returns are its own
		case *ast.ReturnStmt:
			sawReturn = true
			if len(x.Results) == 0 {
				for i := 0; i < sig.Results().Len(); i++ {
					r := sig.Results().At(i)
					if inert(r.Type()) {
						continue
					}
					if !a.freshVar(r) {
						fresh = false
					}
				}
				return true
			}
			for i, res := range x.Results {
				if len(x.Results) == sig.Results().Len() && inert(sig.Results().At(i).Type()) {
					continue
				}
				if !a.freshExpr(res) {
					fresh = false
				}
			}
		}
		return fresh
	}
	ast.Inspect(a.decl.Body, visit)
	if fresh && sawReturn {
		a.fact.Bits |= returnsFresh
	}
}

var errorType = types.Universe.Lookup("error").Type()

// walk visits every write and call in the body, recording facts and
// (when report is set and the function is not a builder) emitting
// diagnostics.
func (a *funcAnalysis) walk() {
	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(a.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			var id *ast.Ident
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			}
			if id != nil {
				calleeIdents[id] = true
			}
		}
		return true
	})
	ast.Inspect(a.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				a.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			a.checkWrite(x.X)
		case *ast.CallExpr:
			if b, ok := analysis.CalleeOf(a.info, x).(*types.Builtin); ok {
				if b.Name() == "delete" && len(x.Args) > 0 {
					a.checkWrite(&ast.IndexExpr{X: x.Args[0], Index: x.Args[0]})
				}
				return true
			}
			a.checkCall(x)
		case *ast.SelectorExpr:
			if !calleeIdents[x.Sel] {
				a.checkMethodValue(x)
			}
		}
		return true
	})
}

// frozenKey returns the marked type key of t (through pointers and
// aliases), if any.
func (a *funcAnalysis) frozenKey(t types.Type) (string, bool) {
	for {
		t = types.Unalias(t)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", false
	}
	key := summary.TypeKey(named.Obj())
	return key, a.frozen[key]
}

// frozenChain reports whether writing through lhs mutates data owned
// by a frozen type: any link of the selector/index/deref chain whose
// base is (a pointer to) a frozen named type.
func (a *funcAnalysis) frozenChain(lhs ast.Expr) (string, bool) {
	e := lhs
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := a.info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if key, ok := a.frozenKey(a.info.TypeOf(x.X)); ok {
					return key, true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if key, ok := a.frozenKey(a.info.TypeOf(x.X)); ok {
				return key, true
			}
			e = x.X
		case *ast.StarExpr:
			if key, ok := a.frozenKey(a.info.TypeOf(x.X)); ok {
				return key, true
			}
			e = x.X
		default:
			return "", false
		}
	}
}

// rootExpr walks a write's chain down to its base expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ast.Unparen(e)
		}
	}
}

// checkWrite classifies one write destination.
func (a *funcAnalysis) checkWrite(lhs ast.Expr) {
	key, ok := a.frozenChain(lhs)
	if !ok {
		return
	}
	switch root := rootExpr(lhs).(type) {
	case *ast.Ident:
		v, _ := a.info.ObjectOf(root).(*types.Var)
		if v != nil {
			if slot, isParam := a.slots[v]; isParam {
				a.fact.AddParam(slot)
				a.fact.AddString(key)
				return
			}
			if a.freshVar(v) {
				return
			}
		}
	case *ast.CallExpr:
		if a.callFresh(root) {
			return
		}
	}
	a.emit(lhs.Pos(), "write to %s (//choreolint:frozen) outside a //choreolint:builder function; published data is immutable", key)
}

// checkCall flags arguments that flow into a callee's written
// parameter slots, and propagates the taint when the argument is this
// function's own parameter.
func (a *funcAnalysis) checkCall(call *ast.CallExpr) {
	var callees []*types.Func
	switch callee := analysis.CalleeOf(a.info, call).(type) {
	case *types.Func:
		if recv := callee.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
			callees = a.graph.Implementers(callee)
		} else {
			callees = []*types.Func{callee}
		}
	default:
		return
	}
	for _, callee := range callees {
		cf := a.cur(callee)
		if len(cf.Params) == 0 {
			continue
		}
		for _, slot := range cf.Params {
			arg, ok := a.argForSlot(call, callee, slot)
			if !ok {
				continue
			}
			a.checkFlow(call.Pos(), arg, callee, cf)
		}
	}
}

// checkMethodValue flags a bound method value whose method writes its
// receiver: the binding is the moment a non-fresh value escapes into
// the writer.
func (a *funcAnalysis) checkMethodValue(sel *ast.SelectorExpr) {
	m, ok := a.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	if s, ok := a.info.Selections[sel]; !ok || s.Kind() != types.MethodVal {
		return
	}
	cf := a.cur(m)
	if !cf.HasParam(0) {
		return
	}
	a.checkFlow(sel.Pos(), sel.X, m, cf)
}

// checkFlow classifies one argument flowing into a written slot.
func (a *funcAnalysis) checkFlow(pos token.Pos, arg ast.Expr, callee *types.Func, cf summary.Fact) {
	switch root := rootExpr(arg).(type) {
	case *ast.Ident:
		v, _ := a.info.ObjectOf(root).(*types.Var)
		if v != nil {
			if slot, isParam := a.slots[v]; isParam {
				a.fact.AddParam(slot)
				a.fact.MergeStrings(cf)
				return
			}
			if a.freshVar(v) {
				return
			}
		}
	case *ast.CallExpr:
		if a.callFresh(root) {
			return
		}
	case *ast.CompositeLit:
		return
	}
	a.emit(pos, "call to %s writes %s (//choreolint:frozen) through its parameters; the argument is not freshly constructed in this non-builder function", callee.Name(), joinKeys(cf.Strings))
}

// emit reports a diagnostic unless the function is a builder or the
// walk is the fact-collection pass.
func (a *funcAnalysis) emit(pos token.Pos, format string, args ...any) {
	if a.builder || a.report == nil {
		return
	}
	a.report(pos, format, args...)
}

func joinKeys(keys []string) string {
	switch len(keys) {
	case 0:
		return "frozen data"
	case 1:
		return keys[0]
	}
	out := keys[0]
	for _, k := range keys[1:] {
		out += ", " + k
	}
	return out
}

// argForSlot maps a written parameter slot (receiver first) to the
// call-site expression that feeds it.
func (a *funcAnalysis) argForSlot(call *ast.CallExpr, callee *types.Func, slot int) (ast.Expr, bool) {
	sig := callee.Type().(*types.Signature)
	if sig.Recv() != nil {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, false
		}
		if tv, ok := a.info.Types[sel.X]; ok && tv.IsType() {
			// Method expression T.M(recv, args...): the receiver is
			// argument zero.
			if slot < len(call.Args) {
				return call.Args[slot], true
			}
			return nil, false
		}
		if slot == 0 {
			return sel.X, true
		}
		slot--
	}
	if slot < len(call.Args) {
		return call.Args[slot], true
	}
	return nil, false // variadic tail: a fresh slice at the call
}
