package snapshotimmut_test

import (
	"testing"

	"repro/tools/choreolint/checktest"
	"repro/tools/choreolint/passes/snapshotimmut"
)

// TestFixture runs the analyzer over its seeded-violation fixture
// package and requires every want comment to be reported — the proof
// that the analyzer catches direct, aliased, and call-chain writes to
// frozen data while leaving builders and fresh construction alone.
func TestFixture(t *testing.T) {
	checktest.Fixture(t, "snapshotimmut", snapshotimmut.Analyzer)
}
