// Package walexhaustive keeps replay dispatch exhaustive over the
// journal's record union. The WAL envelope (walRecord in
// internal/store/persist.go) is a struct with exactly one exported
// pointer field set per record; recovery dispatches on which field is
// non-nil. Adding a record type without teaching replay about it
// would silently drop journaled mutations on the next recovery — this
// analyzer turns that into a build-time error.
//
// A struct opts in with a //choreolint:union marker on its doc
// comment. Every tagless switch that nil-tests the union's fields
// (`switch { case rec.Create != nil: ... }`) must then cover every
// exported pointer field and carry a default case rejecting the empty
// record.
package walexhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/tools/choreolint/analysis"
)

// Analyzer reports nil-dispatch switches that miss union fields.
var Analyzer = &analysis.Analyzer{
	Name: "walexhaustive",
	Doc:  "nil-dispatch over a //choreolint:union struct must cover every exported pointer field",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	unions := map[*types.Struct][]string{} // union struct -> exported pointer field names
	for ts := range analysis.UnionStructs(pass) {
		obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var fields []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if _, isPtr := f.Type().(*types.Pointer); isPtr && f.Exported() {
				fields = append(fields, f.Name())
			}
		}
		unions[st] = fields
	}
	if len(unions) == 0 {
		return nil
	}
	analysis.Preorder(pass.Files, func(n ast.Node) {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag != nil {
			return
		}
		checkSwitch(pass, unions, sw)
	})
	return nil
}

// checkSwitch matches one tagless switch against the unions: if any
// case nil-tests a union field, the switch is a dispatch over that
// union and must be exhaustive.
func checkSwitch(pass *analysis.Pass, unions map[*types.Struct][]string, sw *ast.SwitchStmt) {
	covered := map[*types.Struct]map[string]bool{}
	hasDefault := false
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, expr := range cc.List {
			st, field := nilTestedField(pass, unions, expr)
			if st == nil {
				continue
			}
			if covered[st] == nil {
				covered[st] = map[string]bool{}
			}
			covered[st][field] = true
		}
	}
	for st, seen := range covered {
		var missing []string
		for _, f := range unions[st] {
			if !seen[f] {
				missing = append(missing, f)
			}
		}
		sort.Strings(missing)
		if len(missing) > 0 {
			pass.Reportf(sw.Pos(), "union dispatch does not cover field(s) %s; a journal record with only that field set would be dropped on replay", strings.Join(missing, ", "))
		}
		if !hasDefault {
			pass.Reportf(sw.Pos(), "union dispatch has no default case; an empty record must be rejected, not ignored")
		}
	}
}

// nilTestedField recognizes `u.Field != nil` (either operand order)
// where u has a registered union type, returning that union and the
// field name.
func nilTestedField(pass *analysis.Pass, unions map[*types.Struct][]string, expr ast.Expr) (*types.Struct, string) {
	bin, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "!=" {
		return nil, ""
	}
	operand := bin.X
	if isNil(pass, bin.X) {
		operand = bin.Y
	} else if !isNil(pass, bin.Y) {
		return nil, ""
	}
	sel, ok := ast.Unparen(operand).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return nil, ""
	}
	base := pass.TypesInfo.TypeOf(sel.X)
	if base == nil {
		return nil, ""
	}
	if ptr, ok := base.Underlying().(*types.Pointer); ok {
		base = ptr.Elem()
	}
	st, ok := base.Underlying().(*types.Struct)
	if !ok {
		return nil, ""
	}
	if _, registered := unions[st]; !registered {
		return nil, ""
	}
	return st, obj.Name()
}

func isNil(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(expr)]
	return ok && tv.IsNil()
}
