// Package ctxfirst enforces the module's context conventions, the
// ones the store's "Context contract" doc comment promises: a
// function that accepts a context.Context takes it as its first
// parameter, and a function that already has a context — as a
// parameter, or implicitly through an *http.Request — never
// manufactures a fresh one with context.Background or context.TODO.
// A detached context cuts the request path's cancellation chain:
// the caller hangs up and the work keeps burning CPU, which is
// exactly the leak the store's expensive paths re-check ctx to
// prevent.
//
// Legitimate detachment points (a background sweep whose lifetime is
// owned by a job, replay on a store nobody can cancel yet) carry a
// //lint:ignore choreolint/ctxfirst directive with the reason, so
// every detachment in the tree is a documented decision.
package ctxfirst

import (
	"go/ast"
	"go/types"

	"repro/tools/choreolint/analysis"
)

// Analyzer reports misplaced context parameters and detached contexts.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context parameters come first; no context.Background/TODO where a context is in scope",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkSignature(pass, fd)
			if hasContext(pass, fd) {
				checkBody(pass, fd)
			}
		}
	}
	return nil
}

// checkSignature reports a context.Context parameter anywhere but
// position 0.
func checkSignature(pass *analysis.Pass, fd *ast.FuncDecl) {
	pos := 0
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		if t != nil && analysis.IsContextType(t) && pos != 0 {
			pass.Reportf(field.Pos(), "%s: context.Context must be the first parameter", fd.Name.Name)
		}
		pos += names
	}
}

// hasContext reports whether the function receives a context: a
// context.Context parameter, or an *http.Request (whose Context
// method is the request path's context).
func hasContext(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if analysis.IsContextType(t) {
			return true
		}
		if ptr, ok := t.(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request" {
					return true
				}
			}
		}
	}
	return false
}

// checkBody reports context.Background()/context.TODO() calls in a
// function that already has a context to thread.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range []string{"Background", "TODO"} {
			if analysis.IsPkgCall(pass.TypesInfo, call, "context", name) {
				pass.Reportf(call.Pos(), "context.%s() inside %s, which already has a context: thread it instead of detaching", name, fd.Name.Name)
			}
		}
		return true
	})
}
