// Package passes registers the choreolint analyzer suite. Each
// analyzer encodes one repository invariant; docs/lint.md is the
// catalog with the reasoning behind each.
package passes

import (
	"repro/tools/choreolint/analysis"
	"repro/tools/choreolint/analysis/summary"
	"repro/tools/choreolint/passes/ctxfirst"
	"repro/tools/choreolint/passes/errenvelope"
	"repro/tools/choreolint/passes/faultpoint"
	"repro/tools/choreolint/passes/lockheldio"
	"repro/tools/choreolint/passes/lockorder"
	"repro/tools/choreolint/passes/replaydeterminism"
	"repro/tools/choreolint/passes/snapshotimmut"
	"repro/tools/choreolint/passes/walexhaustive"
)

// All returns the full suite in the order findings are most useful to
// read: concurrency and durability first, then API conventions.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockorder.Analyzer,
		lockheldio.Analyzer,
		snapshotimmut.Analyzer,
		walexhaustive.Analyzer,
		faultpoint.Analyzer,
		replaydeterminism.Analyzer,
		ctxfirst.Analyzer,
		errenvelope.Analyzer,
	}
}

// Collectors returns the summary collectors the suite's
// interprocedural passes contribute; drivers run them through
// summary.Compute before the analyzers and export the result over the
// vetx protocol.
func Collectors() []*summary.Collector {
	return []*summary.Collector{
		lockorder.Collector,
		lockheldio.Collector,
		snapshotimmut.Collector,
	}
}
