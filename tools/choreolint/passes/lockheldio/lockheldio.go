// Package lockheldio generalizes lockorder's held-state walk into a
// blocking-operation check: while a mutex field marked
// //choreolint:hotlock is held (the store's persistMu, instAppendMu,
// and the shard mutexes), nothing slow or unbounded may run — no
// os.File I/O or fsync, no net calls, no time.Sleep, and no
// unbuffered channel sends. Those locks sit on the serving path;
// every reader and mutator queues behind them, so one fsync or one
// blocked send under a shard lock turns a sub-millisecond commit into
// a pile-up.
//
// The one sanctioned exception is the journal: WAL appends must
// happen under the locks (per-key WAL order equals in-memory order),
// and the journal package owns its own buffering and fsync policy.
// Calls into repro/internal/journal are therefore allowlisted; any
// other path to I/O — direct, through a same-package helper
// (summary-engine fact, fixed point over the call graph), or through
// another module package (vetx summary facts) — is reported at the
// call that runs it under the lock.
//
// Sends are flagged only when blocking is possible: a send on a
// channel made locally with a constant positive capacity, or a send
// inside a select that has a default case, is allowed. Held-state
// tracking mirrors lockorder, including deferred releases and the
// persistRLock idiom (a function returning with a hot lock held marks
// its callers as holding it).
package lockheldio

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/tools/choreolint/analysis"
	"repro/tools/choreolint/analysis/summary"
)

// Analyzer reports blocking operations under //choreolint:hotlock mutexes.
var Analyzer = &analysis.Analyzer{
	Name: "lockheldio",
	Doc:  "no file I/O, net calls, sleeps, or unbuffered sends while a //choreolint:hotlock mutex is held",
	Run:  run,
}

// Summary bits: the kinds of blocking operation a function performs
// (directly or transitively, journal excepted).
const (
	doesFileIO = 1 << iota
	doesNet
	doesSleep
	doesChanSend
)

const allOps = doesFileIO | doesNet | doesSleep | doesChanSend

// journalPkg is the allowlisted append path.
const journalPkg = "repro/internal/journal"

// leakPrefix tags a leaked (returned-held) hot lock in Fact.Strings.
const leakPrefix = "leaks:"

// osFileFuncs are the file-touching package functions of os.
var osFileFuncs = map[string]bool{
	"Create": true, "CreateTemp": true, "Open": true, "OpenFile": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "Remove": true,
	"RemoveAll": true, "Rename": true, "Mkdir": true, "MkdirAll": true,
	"MkdirTemp": true, "Truncate": true, "Chmod": true, "Chtimes": true,
	"Link": true, "Symlink": true,
}

// netIONames and httpIONames are the identifiers of net and net/http
// that actually touch the wire (or the request body). The rest of
// those packages — Request.Context, PathValue, Addr.String, header
// plumbing — are pure accessors and must not count as network I/O.
var netIONames = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
	"DialUnix": true, "DialIP": true,
	"Listen": true, "ListenTCP": true, "ListenUDP": true, "ListenUnix": true,
	"ListenPacket": true, "ListenIP": true,
	"Accept": true, "AcceptTCP": true, "AcceptUnix": true,
	"Read": true, "ReadFrom": true, "ReadFromUDP": true, "ReadMsgUDP": true,
	"Write": true, "WriteTo": true, "WriteToUDP": true, "WriteMsgUDP": true,
	"Close": true, "CloseRead": true, "CloseWrite": true,
	"LookupHost": true, "LookupIP": true, "LookupAddr": true, "LookupCNAME": true,
	"LookupMX": true, "LookupNS": true, "LookupPort": true, "LookupSRV": true,
	"LookupTXT": true,
}

var httpIONames = map[string]bool{
	"Do": true, "Get": true, "Head": true, "Post": true, "PostForm": true,
	"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true,
	"ServeTLS": true, "Shutdown": true, "Close": true,
	"Write": true, "WriteHeader": true, "Flush": true, "FlushError": true,
	"ReadRequest": true, "ReadResponse": true, "Redirect": true,
	"ServeFile": true, "ServeContent": true, "Error": true, "NotFound": true,
	"ParseForm": true, "ParseMultipartForm": true, "FormValue": true,
	"PostFormValue": true, "FormFile": true,
}

// Collector computes each function's blocking-operation bits and the
// hot locks it returns while holding.
var Collector = &summary.Collector{
	Name: "lockheldio",
	Scan: scan,
}

func scan(c *summary.Context, fn *types.Func, decl *ast.FuncDecl, cur summary.Lookup) summary.Fact {
	if decl == nil || decl.Body == nil {
		return summary.Fact{}
	}
	hot, ok := c.Cache["lockheldio.hot"].(map[*types.Var]bool)
	if !ok {
		hot = hotLocks(c.Files, c.TypesInfo)
		c.Cache["lockheldio.hot"] = hot
	}
	rel := releaseVars(c.TypesInfo, decl, cur)
	var f summary.Fact
	held := map[string]int{}
	// deferred counts releases scheduled with defer: the lock is held
	// for the rest of the body but NOT past return, so it must not
	// become a leak fact.
	deferred := map[string]int{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if name, _, release := hotLockCall(c.TypesInfo, hot, x.Call); release && name != "" {
				deferred[name]++
				return false
			}
			if locks := releasedBy(c.TypesInfo, rel, x.Call); len(locks) > 0 {
				for _, l := range locks {
					deferred[l]++
				}
				return false
			}
		case *ast.SendStmt:
			if blockingSend(c.TypesInfo, decl, x) {
				f.Bits |= doesChanSend
			}
		case *ast.SelectStmt:
			if selectHasDefault(x) {
				return false // non-blocking by construction
			}
		case *ast.CallExpr:
			if name, acquire, release := hotLockCall(c.TypesInfo, hot, x); name != "" {
				if acquire {
					held[name]++
				} else if release && held[name] > 0 {
					held[name]--
				}
				return true
			}
			if locks := releasedBy(c.TypesInfo, rel, x); len(locks) > 0 {
				for _, l := range locks {
					if held[l] > 0 {
						held[l]--
					}
				}
				return true
			}
			if op, _ := directOp(c.TypesInfo, x); op != 0 {
				f.Bits |= op
				return true
			}
			callee, ok := analysis.CalleeOf(c.TypesInfo, x).(*types.Func)
			if !ok {
				return true
			}
			f.Bits |= calleeBits(c.Graph, cur, callee)
			for _, leaked := range leakedLocks(cur(callee)) {
				held[leaked]++
			}
		}
		return true
	})
	for name, n := range held {
		if n-deferred[name] > 0 {
			f.AddString(leakPrefix + name)
		}
	}
	f.Bits &= allOps
	return f
}

// releaseVars maps function-typed variables assigned from a
// lock-leaking call to the locks that call acquired — the
// `release := s.persistRLock(); defer release()` idiom. Calling or
// deferring such a variable releases those locks.
func releaseVars(info *types.Info, decl *ast.FuncDecl, cur summary.Lookup) map[types.Object][]string {
	out := map[types.Object][]string{}
	record := func(lhs []ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		callee, ok := analysis.CalleeOf(info, call).(*types.Func)
		if !ok {
			return
		}
		locks := leakedLocks(cur(callee))
		if len(locks) == 0 {
			return
		}
		for _, l := range lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.ObjectOf(id)
			if obj == nil {
				continue
			}
			if _, ok := types.Unalias(obj.Type()).(*types.Signature); ok {
				out[obj] = locks
			}
		}
	}
	ast.Inspect(decl, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 {
				record(x.Lhs, x.Rhs[0])
			} else {
				for i := range x.Rhs {
					if i < len(x.Lhs) {
						record(x.Lhs[i:i+1], x.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) == 1 {
				ids := make([]ast.Expr, len(x.Names))
				for i, id := range x.Names {
					ids[i] = id
				}
				record(ids, x.Values[0])
			}
		}
		return true
	})
	return out
}

// releasedBy returns the locks released by calling a release variable
// (empty when the call is not one).
func releasedBy(info *types.Info, rel map[types.Object][]string, call *ast.CallExpr) []string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	return rel[info.ObjectOf(id)]
}

// calleeBits folds one callee's blocking bits, with the journal
// allowlist and the interface approximation applied.
func calleeBits(g *summary.Graph, cur summary.Lookup, callee *types.Func) uint64 {
	if callee.Pkg() != nil && callee.Pkg().Path() == journalPkg {
		return 0 // the WAL's own append path is the sanctioned exception
	}
	if recv := callee.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		var bits uint64
		for _, impl := range g.Implementers(callee) {
			bits |= cur(impl).Bits
		}
		return bits & allOps
	}
	return cur(callee).Bits & allOps
}

// leakedLocks decodes the hot locks a callee returns while holding.
func leakedLocks(f summary.Fact) []string {
	var out []string
	for _, s := range f.Strings {
		if name, ok := strings.CutPrefix(s, leakPrefix); ok {
			out = append(out, name)
		}
	}
	return out
}

func run(pass *analysis.Pass) error {
	hot := hotLocks(pass.Files, pass.TypesInfo)
	graph := pass.Summary.Graph()
	cur := pass.Summary.Lookup("lockheldio")
	for _, decl := range graph.Decls {
		checkFunc(pass, hot, graph, cur, decl)
	}
	return nil
}

// checkFunc re-walks one function in source order, tracking the held
// hot locks, and reports every blocking operation inside a held
// region.
func checkFunc(pass *analysis.Pass, hot map[*types.Var]bool, graph *summary.Graph, cur summary.Lookup, decl *ast.FuncDecl) {
	if decl == nil || decl.Body == nil {
		return
	}
	rel := releaseVars(pass.TypesInfo, decl, cur)
	held := map[string]int{}
	heldNames := func() string {
		var names []string
		for name, n := range held {
			if n > 0 {
				names = append(names, name)
			}
		}
		if len(names) == 0 {
			return ""
		}
		// Deterministic message regardless of map order.
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
		return strings.Join(names, "+")
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			// A deferred release keeps the lock held for the rest of
			// the body; operations after it are still reported.
			if name, _, release := hotLockCall(pass.TypesInfo, hot, x.Call); release && name != "" {
				return false
			}
			if len(releasedBy(pass.TypesInfo, rel, x.Call)) > 0 {
				return false
			}
		case *ast.SendStmt:
			if locks := heldNames(); locks != "" && blockingSend(pass.TypesInfo, decl, x) {
				pass.Reportf(x.Pos(), "potentially blocking channel send while %s is held; use a buffered channel or a select with default", locks)
			}
		case *ast.SelectStmt:
			if selectHasDefault(x) {
				return false
			}
		case *ast.CallExpr:
			if name, acquire, release := hotLockCall(pass.TypesInfo, hot, x); name != "" {
				if acquire {
					held[name]++
				} else if release && held[name] > 0 {
					held[name]--
				}
				return true
			}
			if locks := releasedBy(pass.TypesInfo, rel, x); len(locks) > 0 {
				for _, l := range locks {
					if held[l] > 0 {
						held[l]--
					}
				}
				return true
			}
			locks := heldNames()
			if op, what := directOp(pass.TypesInfo, x); op != 0 {
				if locks != "" {
					pass.Reportf(x.Pos(), "%s while %s is held; move it outside the critical section (journal appends go through internal/journal)", what, locks)
				}
				return true
			}
			callee, ok := analysis.CalleeOf(pass.TypesInfo, x).(*types.Func)
			if !ok {
				return true
			}
			if locks != "" {
				if bits := calleeBits(graph, cur, callee); bits != 0 {
					pass.Reportf(x.Pos(), "call to %s performs %s while %s is held; move it outside the critical section (journal appends go through internal/journal)", callee.Name(), opNames(bits), locks)
				}
			}
			for _, leaked := range leakedLocks(cur(callee)) {
				held[leaked]++
			}
		}
		return true
	})
}

// selectHasDefault reports whether a select statement carries a
// default case, making every send in it non-blocking.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// hotLocks returns the //choreolint:hotlock-marked mutex fields, by
// identity.
func hotLocks(files []*ast.File, info *types.Info) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldMarked(field) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

func fieldMarked(field *ast.Field) bool {
	for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if strings.TrimSpace(c.Text) == "//choreolint:hotlock" {
				return true
			}
		}
	}
	return false
}

// hotLockCall classifies a call against the marked mutex fields,
// resolving the receiver to the field's variable object so two fields
// named mu on different structs are tracked correctly (they share a
// report name; either being held bans the same operations).
func hotLockCall(info *types.Info, hot map[*types.Var]bool, call *ast.CallExpr) (name string, acquire, release bool) {
	obj := analysis.CalleeOf(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false, false
	}
	v := analysis.ReceiverFieldVar(info, call)
	if v == nil || !hot[v] {
		return "", false, false
	}
	switch obj.Name() {
	case "Lock", "RLock":
		return v.Name(), true, false
	case "Unlock", "RUnlock":
		return v.Name(), false, true
	}
	return "", false, false
}

// directOp classifies one call as a banned blocking operation.
func directOp(info *types.Info, call *ast.CallExpr) (uint64, string) {
	obj := analysis.CalleeOf(info, call)
	if obj == nil || obj.Pkg() == nil {
		return 0, ""
	}
	path := obj.Pkg().Path()
	switch {
	case path == "os":
		fn, isFunc := obj.(*types.Func)
		if !isFunc {
			return 0, ""
		}
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			// Any *os.File method is file I/O (Write, Sync, Close, ...).
			if key, ok := namedKey(recv.Type()); ok && key == "os.File" {
				return doesFileIO, "os.File." + obj.Name() + " (file I/O)"
			}
			return 0, ""
		}
		if osFileFuncs[obj.Name()] {
			return doesFileIO, "os." + obj.Name() + " (file I/O)"
		}
	case path == "net":
		if netIONames[obj.Name()] {
			return doesNet, "net." + obj.Name() + " (network I/O)"
		}
	case path == "net/http":
		if httpIONames[obj.Name()] {
			return doesNet, "net/http." + obj.Name() + " (network I/O)"
		}
	case path == "time" && obj.Name() == "Sleep":
		return doesSleep, "time.Sleep"
	case path == "syscall" && (obj.Name() == "Fsync" || obj.Name() == "Fdatasync"):
		return doesFileIO, "syscall." + obj.Name() + " (fsync)"
	}
	return 0, ""
}

func namedKey(t types.Type) (string, bool) {
	for {
		t = types.Unalias(t)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name(), true
}

func opNames(bits uint64) string {
	var parts []string
	if bits&doesFileIO != 0 {
		parts = append(parts, "file I/O")
	}
	if bits&doesNet != 0 {
		parts = append(parts, "network I/O")
	}
	if bits&doesSleep != 0 {
		parts = append(parts, "a sleep")
	}
	if bits&doesChanSend != 0 {
		parts = append(parts, "a potentially blocking channel send")
	}
	return strings.Join(parts, ", ")
}

// blockingSend reports whether a send can block: true unless the
// channel is made in this function with a constant positive capacity.
// (Sends under a select with a default never reach here: the walk
// prunes those selects.)
func blockingSend(info *types.Info, decl *ast.FuncDecl, send *ast.SendStmt) bool {
	id, ok := ast.Unparen(send.Chan).(*ast.Ident)
	if !ok {
		return true
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	if !ok {
		return true
	}
	buffered := false
	ast.Inspect(decl, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || buffered {
			return !buffered
		}
		for i, lhs := range assign.Lhs {
			target, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || info.ObjectOf(target) != v || i >= len(assign.Rhs) {
				continue
			}
			if bufferedMake(info, assign.Rhs[i]) {
				buffered = true
			}
		}
		return true
	})
	return !buffered
}

// bufferedMake reports whether e is make(chan T, n) with constant n > 0.
func bufferedMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	b, ok := analysis.CalleeOf(info, call).(*types.Builtin)
	if !ok || b.Name() != "make" {
		return false
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	n, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && n > 0
}
