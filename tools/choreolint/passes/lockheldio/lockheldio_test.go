package lockheldio_test

import (
	"testing"

	"repro/tools/choreolint/checktest"
	"repro/tools/choreolint/passes/lockheldio"
)

// TestFixture runs the analyzer over its seeded-violation fixture
// package and requires every want comment to be reported — the proof
// that the analyzer catches I/O, sleeps, and blocking sends under
// //choreolint:hotlock mutexes while allowlisting the journal's own
// append path.
func TestFixture(t *testing.T) {
	checktest.Fixture(t, "lockheldio", lockheldio.Analyzer)
}
