// Package faultpoint keeps the failpoint namespace static. The fault
// framework's contract (internal/fault) is that every failpoint name
// is declared once in the catalog (the fault package's Point*
// constants), registered exactly once with fault.New by the package
// owning the call site, and referenced by that same constant at every
// arming site. A computed name defeats grep and the catalog; a name
// outside the catalog is either a typo or an unregistered point that
// every Arm will reject at runtime.
//
// The analyzer reports:
//
//   - fault.New whose name argument is not a compile-time string
//     constant — registrations must be statically greppable;
//   - fault.New of a name absent from the catalog;
//   - two fault.New calls with the same name in one package (the
//     runtime panic is the cross-package backstop);
//   - fault.Arm / Disarm / Fires with a constant name outside the
//     catalog (non-constant names — e.g. ranging over a slice of
//     catalog constants — are left to the runtime lookup);
//   - fault.ArmSpec whose constant spec names a point outside the
//     catalog.
//
// The fault package itself is exempt: it defines the framework, and
// its tests arm deliberately bogus names.
package faultpoint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/tools/choreolint/analysis"
)

// Analyzer reports failpoint names that are computed, duplicated, or
// absent from the fault package's catalog.
var Analyzer = &analysis.Analyzer{
	Name: "faultpoint",
	Doc:  "failpoint names are catalog constants: no computed names, duplicate registrations, or arming outside the catalog",
	Run:  run,
}

// faultPath is the framework package; suffix-matched so the fixture
// package (whose import graph the test loader rewrites under the
// module root) resolves the same way production packages do.
const faultPath = "internal/fault"

func isFaultPkg(path string) bool {
	return path == faultPath || strings.HasSuffix(path, "/"+faultPath)
}

func run(pass *analysis.Pass) error {
	if isFaultPkg(pass.Pkg.Path()) {
		return nil
	}
	catalog := catalogOf(pass.Pkg)
	if catalog == nil {
		// The package does not import the framework; nothing to check.
		return nil
	}
	registered := map[string]bool{}
	analysis.Preorder(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		obj := analysis.CalleeOf(pass.TypesInfo, call)
		if obj == nil || obj.Pkg() == nil || !isFaultPkg(obj.Pkg().Path()) || len(call.Args) == 0 {
			return
		}
		name, isConst := constString(pass.TypesInfo, call.Args[0])
		switch obj.Name() {
		case "New":
			switch {
			case !isConst:
				pass.Reportf(call.Args[0].Pos(), "failpoint name must be a compile-time constant from the fault catalog")
			case !catalog[name]:
				pass.Reportf(call.Args[0].Pos(), "failpoint %q is not in the fault catalog (internal/fault/catalog.go)", name)
			case registered[name]:
				pass.Reportf(call.Pos(), "failpoint %q registered twice in this package", name)
			default:
				registered[name] = true
			}
		case "Arm", "Disarm", "Fires":
			if isConst && !catalog[name] {
				pass.Reportf(call.Args[0].Pos(), "arming failpoint %q, which is not in the fault catalog", name)
			}
		case "ArmSpec":
			if !isConst {
				return
			}
			for _, entry := range strings.Split(name, ",") {
				pt, _, ok := strings.Cut(strings.TrimSpace(entry), "=")
				if ok && pt != "" && !catalog[pt] {
					pass.Reportf(call.Args[0].Pos(), "spec arms failpoint %q, which is not in the fault catalog", pt)
				}
			}
		}
	})
	return nil
}

// catalogOf collects the fault package's catalog — its exported
// Point* string constants — from the import's export data, or nil
// when the package does not import the framework.
func catalogOf(pkg *types.Package) map[string]bool {
	for _, imp := range pkg.Imports() {
		if !isFaultPkg(imp.Path()) {
			continue
		}
		catalog := map[string]bool{}
		scope := imp.Scope()
		for _, n := range scope.Names() {
			if !strings.HasPrefix(n, "Point") {
				continue
			}
			if c, ok := scope.Lookup(n).(*types.Const); ok && c.Val().Kind() == constant.String {
				catalog[constant.StringVal(c.Val())] = true
			}
		}
		return catalog
	}
	return nil
}

// constString resolves an expression to its compile-time string value.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
