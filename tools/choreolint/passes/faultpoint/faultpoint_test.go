package faultpoint_test

import (
	"testing"

	"repro/tools/choreolint/checktest"
	"repro/tools/choreolint/passes/faultpoint"
)

// TestFixture runs the analyzer over its seeded-violation fixture
// package and requires every want comment to be reported — the proof
// that the analyzer catches the invariant breach it encodes.
func TestFixture(t *testing.T) {
	checktest.Fixture(t, "faultpoint", faultpoint.Analyzer)
}
