// Package lockorder enforces the store's documented lock hierarchy
// around the persistence mutex: commitMu and instAppendMu are taken
// OUTSIDE persistMu (internal/store/persist.go's package comment), so
// acquiring either of them while persistMu is held — directly, or by
// calling a function that does — can deadlock a checkpoint against a
// mutator and is reported.
//
// The check is name-based and flow-insensitive on purpose: it tracks
// mutexes by their field or variable name (persistMu, commitMu,
// instAppendMu), scans each function's statements in source order,
// and treats a lock as held from its Lock/RLock call until an
// un-deferred Unlock/RUnlock of the same name. Functions that return
// while still holding persistMu (the persistRLock idiom, which hands
// the caller the unlock) mark their callers as holding it too. The
// transitive "acquires an outer lock" bit is a summary-engine fact
// computed to a fixed point over the package call graph; calls
// through function values or other packages are invisible to the
// walk — the hierarchy is a package-internal contract, so that is the
// right scope.
package lockorder

import (
	"go/ast"
	"go/types"

	"repro/tools/choreolint/analysis"
	"repro/tools/choreolint/analysis/summary"
)

// Analyzer reports acquisitions that invert the persistMu hierarchy.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "commitMu/instAppendMu must never be acquired while persistMu is held",
	Run:  run,
}

// innerLock is held innermost; outerLocks must already be held (or
// never taken) when it is.
const innerLock = "persistMu"

var outerLocks = map[string]bool{"commitMu": true, "instAppendMu": true}

const (
	acquiresOuter = 1 << iota // takes commitMu/instAppendMu somewhere inside
	leaksInner                // returns with persistMu still held
)

// Collector computes each function's lock summary on the shared
// engine: its own acquisitions plus the acquiresOuter bit of every
// same-package callee, to a fixed point.
var Collector = &summary.Collector{
	Name: "lockorder",
	Scan: func(c *summary.Context, fn *types.Func, decl *ast.FuncDecl, cur summary.Lookup) summary.Fact {
		bits := scanLocks(c.TypesInfo, decl)
		for _, callee := range c.Graph.Calls[fn] {
			bits |= cur(callee).Bits & acquiresOuter
		}
		return summary.Fact{Bits: bits}
	},
}

func run(pass *analysis.Pass) error {
	graph := pass.Summary.Graph()
	for fn, decl := range graph.Decls {
		checkFunc(pass, graph, fn, decl)
	}
	return nil
}

// lockCall classifies one call expression against the tracked
// mutexes, returning the mutex name and whether the call acquires
// (Lock/RLock) or releases (Unlock/RUnlock) it.
func lockCall(info *types.Info, call *ast.CallExpr) (mutex string, acquire, release bool) {
	obj := analysis.CalleeOf(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false, false
	}
	name := analysis.ReceiverField(info, call)
	if name != innerLock && !outerLocks[name] {
		return "", false, false
	}
	switch obj.Name() {
	case "Lock", "RLock":
		return name, true, false
	case "Unlock", "RUnlock":
		return name, false, true
	}
	return "", false, false
}

// scanLocks computes a function's summary bits from its own body.
func scanLocks(info *types.Info, decl *ast.FuncDecl) uint64 {
	if decl == nil || decl.Body == nil {
		return 0
	}
	var s uint64
	innerHeld := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			// A deferred release keeps the lock held for the rest of
			// the body but not past the return.
			if name, _, release := lockCall(info, d.Call); release && name == innerLock {
				return false
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch name, acquire, release := lockCall(info, call); {
		case acquire && outerLocks[name]:
			s |= acquiresOuter
		case acquire && name == innerLock:
			innerHeld = true
		case release && name == innerLock:
			innerHeld = false
		}
		return true
	})
	if innerHeld {
		s |= leaksInner
	}
	return s
}

// checkFunc re-walks one function in source order, tracking whether
// persistMu is held, and reports every outer-lock acquisition — direct
// or via a call — inside the held region.
func checkFunc(pass *analysis.Pass, graph *summary.Graph, fn *types.Func, decl *ast.FuncDecl) {
	if decl == nil || decl.Body == nil {
		return
	}
	held := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if name, _, release := lockCall(pass.TypesInfo, d.Call); release && name == innerLock {
				return false
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, acquire, release := lockCall(pass.TypesInfo, call); name != "" {
			switch {
			case acquire && outerLocks[name]:
				if held {
					pass.Reportf(call.Pos(), "%s acquired while %s is held (lock order: %s before %s)", name, innerLock, name, innerLock)
				}
			case acquire && name == innerLock:
				held = true
			case release && name == innerLock:
				held = false
			}
			return true
		}
		callee, ok := analysis.CalleeOf(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return true
		}
		if _, declared := graph.Decls[callee]; !declared {
			return true
		}
		bits := pass.Summary.Fact("lockorder", callee).Bits
		if held && bits&acquiresOuter != 0 {
			pass.Reportf(call.Pos(), "call to %s acquires commitMu/instAppendMu while %s is held (lock order: commitMu, instAppendMu before %s)", callee.Name(), innerLock, innerLock)
		}
		if bits&leaksInner != 0 {
			held = true
		}
		return true
	})
}
