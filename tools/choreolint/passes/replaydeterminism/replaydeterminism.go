// Package replaydeterminism keeps crash recovery fact-driven: a
// journal replayed twice must rebuild byte-identical state, so nothing
// reachable from the replay/apply path may consult wall-clock time,
// randomness, or map iteration order. Roots are marked with a
// //choreolint:replay doc-comment directive (replay and
// restoreSnapshot in internal/store/persist.go); the analyzer walks
// the package's static call graph from them and reports, in every
// reachable function:
//
//   - calls into time's clock surface (Now, Since, Until, After,
//     Tick, NewTimer, NewTicker, AfterFunc) — replay must depend only
//     on journaled facts, never on when recovery runs;
//   - any call into math/rand or math/rand/v2 — a replay decision
//     derived from randomness diverges from the live decision it is
//     supposed to reproduce;
//   - a range over a map that appends to a slice declared outside the
//     loop, unless the function visibly sorts that slice afterwards —
//     the canonical way iteration order leaks into rebuilt state.
//
// Reachability is the summary engine's package call graph including
// its approximated indirect edges, so a clock read behind a method
// value or a same-package interface implementation is found too.
// Cross-package callees are out of scope (the journal's replay facts
// are decided in internal/store); crypto/rand is deliberately not
// banned — it never makes replay decisions, and flagging it would
// only invite blanket suppressions.
package replaydeterminism

import (
	"go/ast"
	"go/types"

	"repro/tools/choreolint/analysis"
)

// Analyzer reports nondeterminism reachable from //choreolint:replay roots.
var Analyzer = &analysis.Analyzer{
	Name: "replaydeterminism",
	Doc:  "no clock, randomness, or map-order-dependent writes reachable from //choreolint:replay roots",
	Run:  run,
}

// clockFuncs are the banned package-level functions of "time".
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	roots := analysis.MarkedFuncs(pass, "replay")
	if len(roots) == 0 {
		return nil
	}
	graph := pass.Summary.Graph()
	var rootFns []*types.Func
	for _, decl := range roots {
		if fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
			rootFns = append(rootFns, fn)
		}
	}
	for fn := range graph.Reachable(rootFns, true) {
		checkFunc(pass, graph.Decls[fn])
	}
	return nil
}

func checkFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	if decl == nil || decl.Body == nil {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, decl, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.CalleeOf(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch path := obj.Pkg().Path(); {
	case path == "time" && clockFuncs[obj.Name()]:
		pass.Reportf(call.Pos(), "time.%s in the replay path: recovery must depend on journaled facts, not on when it runs", obj.Name())
	case path == "math/rand" || path == "math/rand/v2":
		pass.Reportf(call.Pos(), "%s.%s in the replay path: a random replay decision cannot reproduce the live one", path, obj.Name())
	}
}

// checkMapRange flags `for k := range m { s = append(s, ...) }` when s
// outlives the loop and is never sorted later in the same function.
func checkMapRange(pass *analysis.Pass, decl *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isAppend(pass, call) || i >= len(assign.Lhs) {
				continue
			}
			target, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(target)
			if obj == nil || !declaredOutside(obj, rng) {
				continue
			}
			if !sortedInFunc(pass, decl, obj) {
				pass.Reportf(assign.Pos(), "%s accumulates in map iteration order on the replay path; sort it afterwards or iterate a sorted key list", target.Name)
			}
		}
		return true
	})
}

func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredOutside reports whether obj's declaration precedes the range
// statement (it survives the loop, so its element order matters).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos()
}

// sortedInFunc reports whether the function calls into sort or slices
// with obj as an argument (or inside one) anywhere in its body.
func sortedInFunc(pass *analysis.Pass, decl *ast.FuncDecl, obj types.Object) bool {
	sorted := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted {
			return !sorted
		}
		callee := analysis.CalleeOf(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
			if found {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
