// Package errenvelope keeps the HTTP error surface uniform. The /v2/
// API contract promises every error is a machine-readable
// {code, message, details} envelope built from the Code* constants,
// and /v1/ promises the legacy {error} body; both are produced only
// by the writeErrorV1/writeErrorV2 helpers in internal/server. A
// handler that calls http.Error, or hand-writes an error status, ships
// a plain-text or ad-hoc body that clients branching on envelope codes
// cannot parse.
//
// The analyzer self-gates: it only checks packages that declare a
// writeErrorV2 (or writeErrorV1) function — that declaration is what
// makes a package an envelope-owning HTTP surface. Inside one, it
// reports:
//
//   - any call to net/http.Error;
//   - any WriteHeader call with a constant status >= 400 outside the
//     envelope/serialization helpers themselves (writeJSON,
//     writeErrorV1, writeErrorV2) — error statuses must flow through
//     the envelope.
package errenvelope

import (
	"go/ast"
	"go/constant"

	"repro/tools/choreolint/analysis"
)

// Analyzer reports error responses that bypass the envelope helpers.
var Analyzer = &analysis.Analyzer{
	Name: "errenvelope",
	Doc:  "HTTP errors go through writeErrorV1/writeErrorV2, never http.Error or raw error statuses",
	Run:  run,
}

// helperNames are the functions allowed to write error statuses: the
// envelope writers and the JSON serializer they share.
var helperNames = map[string]bool{"writeJSON": true, "writeErrorV1": true, "writeErrorV2": true}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Scope().Lookup("writeErrorV2") == nil && pass.Pkg.Scope().Lookup("writeErrorV1") == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inHelper := helperNames[fd.Name.Name]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if analysis.IsPkgCall(pass.TypesInfo, call, "net/http", "Error") {
					pass.Reportf(call.Pos(), "http.Error bypasses the error envelope; use writeErrorV1/writeErrorV2")
					return true
				}
				if !inHelper {
					checkWriteHeader(pass, call)
				}
				return true
			})
		}
	}
	return nil
}

// checkWriteHeader reports WriteHeader(status) with a constant error
// status outside the helpers.
func checkWriteHeader(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.CalleeOf(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" || obj.Name() != "WriteHeader" {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	if status, ok := constant.Int64Val(tv.Value); ok && status >= 400 {
		pass.Reportf(call.Pos(), "WriteHeader(%d) writes an error status outside the envelope helpers; use writeErrorV1/writeErrorV2", status)
	}
}
