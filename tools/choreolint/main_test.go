package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolProtocol builds the binary and drives it through the
// real `go vet -vettool` JSON protocol — the exact shape CI runs —
// against a seeded-violation fixture (must fail with choreolint
// findings) and against a clean production package (must pass).
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "choreolint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building choreolint: %v\n%s", err, out)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	vet := func(pkg string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, pkg)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet("./tools/choreolint/testdata/src/lockorder/")
	if err == nil {
		t.Fatalf("vet on the lockorder fixture passed; want findings\n%s", out)
	}
	if !strings.Contains(out, "[choreolint/lockorder]") {
		t.Fatalf("vet on the lockorder fixture failed without a lockorder finding:\n%s", out)
	}

	out, err = vet("./internal/journal/")
	if err != nil {
		t.Fatalf("vet on internal/journal failed: %v\n%s", err, out)
	}
}

// TestVersionFlag checks the -V=full handshake the go command uses to
// fingerprint the tool for build caching.
func TestVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := filepath.Join(t.TempDir(), "choreolint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building choreolint: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	got := strings.TrimSpace(string(out))
	if !strings.Contains(got, "choreolint version ") || !strings.Contains(got, "buildID=") {
		t.Fatalf("-V=full printed %q; want \"choreolint version ... buildID=...\"", got)
	}
}
