package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the choreolint binary into a temp dir and
// returns its path together with the repository root go vet must run
// from.
func buildTool(t *testing.T) (bin, root string) {
	t.Helper()
	if testing.Short() {
		t.Skip("builds the binary and shells out to go vet")
	}
	bin = filepath.Join(t.TempDir(), "choreolint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building choreolint: %v\n%s", err, out)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return bin, root
}

// goVet drives the built binary through the real `go vet -vettool`
// protocol from the repository root.
func goVet(bin, root string, args ...string) (string, error) {
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + bin}, args...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVettoolProtocol builds the binary and drives it through the
// real `go vet -vettool` JSON protocol — the exact shape CI runs —
// against a seeded-violation fixture (must fail with choreolint
// findings) and against a clean production package (must pass).
func TestVettoolProtocol(t *testing.T) {
	bin, root := buildTool(t)

	out, err := goVet(bin, root, "./tools/choreolint/testdata/src/lockorder/")
	if err == nil {
		t.Fatalf("vet on the lockorder fixture passed; want findings\n%s", out)
	}
	if !strings.Contains(out, "[choreolint/lockorder]") {
		t.Fatalf("vet on the lockorder fixture failed without a lockorder finding:\n%s", out)
	}

	out, err = goVet(bin, root, "./internal/journal/")
	if err != nil {
		t.Fatalf("vet on internal/journal failed: %v\n%s", err, out)
	}
}

// TestCrossPackageFacts proves summary facts travel the vetx channel:
// the xpkg fixture's frozen marker, write-set fact, and returnsFresh
// bit all live in frozenlib, while every finding (and non-finding) is
// in the importing package. Without fact transport the two Bad
// functions go silent; without returnsFresh transport GoodFresh gets
// flagged. Both failure modes change the finding count.
func TestCrossPackageFacts(t *testing.T) {
	bin, root := buildTool(t)

	out, err := goVet(bin, root, "./tools/choreolint/testdata/src/xpkg/...")
	if err == nil {
		t.Fatalf("vet on the xpkg fixture passed; want cross-package findings\n%s", out)
	}
	if n := strings.Count(out, "[choreolint/snapshotimmut]"); n != 2 {
		t.Fatalf("got %d snapshotimmut findings, want exactly 2 (BadDirect, BadShared):\n%s", n, out)
	}
	for _, want := range []string{
		"use.go", // both findings are in the importing package
		"frozenlib.Table",
		"call to Set writes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
}

// TestJSONOutput drives the declared -json flag through go vet: exit
// status 0 even with findings (mirroring unitchecker), one JSON
// object per package keyed by import path and prefixed analyzer name.
func TestJSONOutput(t *testing.T) {
	bin, root := buildTool(t)

	out, err := goVet(bin, root, "-json", "./tools/choreolint/testdata/src/xpkg/...")
	if err != nil {
		t.Fatalf("vet -json exited non-zero: %v\n%s", err, out)
	}

	// go vet interleaves "# pkgpath" comment lines with each unit's
	// JSON object; strip the comments and decode the object stream.
	var jsonLines []string
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "#") {
			jsonLines = append(jsonLines, line)
		}
	}
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	merged := map[string]map[string][]jsonDiag{}
	dec := json.NewDecoder(strings.NewReader(strings.Join(jsonLines, "\n")))
	for dec.More() {
		var obj map[string]map[string][]jsonDiag
		if err := dec.Decode(&obj); err != nil {
			t.Fatalf("decoding vet -json stream: %v\n%s", err, out)
		}
		for pkg, byAnalyzer := range obj {
			merged[pkg] = byAnalyzer
		}
	}

	diags := merged["repro/tools/choreolint/testdata/src/xpkg/use"]["choreolint/snapshotimmut"]
	if len(diags) != 2 {
		t.Fatalf("got %d snapshotimmut diagnostics for xpkg/use, want 2:\n%s", len(diags), out)
	}
	for _, d := range diags {
		if !strings.Contains(d.Posn, "use.go:") {
			t.Errorf("diagnostic position %q; want a use.go position", d.Posn)
		}
		if !strings.Contains(d.Message, "frozenlib.Table") {
			t.Errorf("diagnostic message %q; want the frozen type named", d.Message)
		}
	}
}

// TestVersionFlag checks the -V=full handshake the go command uses to
// fingerprint the tool for build caching.
func TestVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := filepath.Join(t.TempDir(), "choreolint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building choreolint: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	got := strings.TrimSpace(string(out))
	if !strings.Contains(got, "choreolint version ") || !strings.Contains(got, "buildID=") {
		t.Fatalf("-V=full printed %q; want \"choreolint version ... buildID=...\"", got)
	}
}
