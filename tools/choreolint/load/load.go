// Package load parses and type-checks one package for analysis. Both
// choreolint drivers go through it: the vettool protocol hands it the
// file list and export-data map from the go command's JSON config, the
// checktest fixture harness synthesizes the same inputs from
// `go list -export -deps -json`. Imports are satisfied from compiled
// export data (the gc importer with a lookup hook), never from source,
// so loading a package costs one parse + one typecheck regardless of
// how deep its import tree is.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// A Unit is one loaded, type-checked package.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TypeErrors collects type-checking problems; analysis over a
	// package that failed to check is unreliable, so drivers treat a
	// non-empty list as fatal unless told otherwise.
	TypeErrors []error
}

// Config describes the compilation unit to load.
type Config struct {
	// ImportPath is the package path under analysis.
	ImportPath string
	// GoFiles are the package's source files.
	GoFiles []string
	// ImportMap resolves import paths to package paths (vendoring);
	// identity for unlisted paths.
	ImportMap map[string]string
	// PackageFile maps package paths to their export-data files.
	PackageFile map[string]string
	// GoVersion is the language version to check against ("go1.24");
	// empty means the toolchain default.
	GoVersion string
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Package loads the unit: parse with comments (analyzers read
// directives), then type-check against the export data.
func Package(cfg *Config) (*Unit, error) {
	u := &Unit{Fset: token.NewFileSet()}
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(u.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		u.Files = append(u.Files, f)
	}
	compilerImporter := importer.ForCompiler(u.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path := importPath
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				path = mapped
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
	}
	u.TypesInfo = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// Check reports problems through tc.Error; the returned error
	// duplicates the first one, so it is deliberately dropped here and
	// surfaced via TypeErrors.
	u.Pkg, _ = tc.Check(cfg.ImportPath, u.Fset, u.Files, u.TypesInfo)
	return u, nil
}
