// Package frozenlib is the dependency half of the cross-package facts
// fixture: it declares the frozen type, a writer helper, and a fresh
// constructor. None of its facts matter locally — the point is that
// they travel to the importing package through the vetx summary file,
// so this fixture is only meaningful when driven by `go vet` (see
// TestCrossPackageFacts in the choreolint main package).
package frozenlib

// Table stands in for published immutable data.
//
//choreolint:frozen
type Table struct {
	Rows map[string]int
}

// published is the package's shared instance — never fresh.
var published = &Table{Rows: map[string]int{}}

// Shared returns the published table; its summary must NOT carry
// returnsFresh.
func Shared() *Table { return published }

// Fresh returns a newly built table; its summary must carry
// returnsFresh.
func Fresh() *Table { return &Table{Rows: map[string]int{}} }

// Set writes through its first parameter; its summary carries the
// write-set fact importers use to flag non-fresh arguments.
func Set(t *Table, k string, v int) { t.Rows[k] = v }
