// Package use is the consumer half of the cross-package facts
// fixture: every frozen marker, write-set fact, and returnsFresh bit
// it depends on lives in frozenlib and reaches this package only
// through the vetx summary channel. Driven by `go vet` from
// TestCrossPackageFacts; the expected findings are pinned there, not
// with want comments, because checktest loads single packages without
// imported facts.
package use

import "repro/tools/choreolint/testdata/src/xpkg/frozenlib"

// BadDirect writes the imported frozen type in place — caught only if
// frozenlib's frozen marker crossed the package boundary.
func BadDirect() {
	frozenlib.Shared().Rows["k"] = 1
}

// BadShared hands the published table to the imported writer — caught
// only if frozenlib's write-set fact for Set crossed the package
// boundary.
func BadShared() {
	frozenlib.Set(frozenlib.Shared(), "k", 1)
}

// GoodFresh writes a table proven fresh by frozenlib's returnsFresh
// fact for Fresh — flagged only if that fact failed to cross.
func GoodFresh() *frozenlib.Table {
	t := frozenlib.Fresh()
	frozenlib.Set(t, "k", 1)
	return t
}
