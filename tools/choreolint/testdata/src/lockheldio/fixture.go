// Package lockheldio is the seeded-violation fixture for the
// lockheldio analyzer: hot-lock-marked mutexes with the blocking
// operations the analyzer must catch under them — direct I/O, a sleep
// under a second lock, transitive I/O through a helper, an unbuffered
// send — next to the allowed shapes: buffered sends, selects with
// default, I/O after release, and the journal's own append path.
package lockheldio

import (
	"os"
	"sync"
	"time"

	"repro/internal/journal"
)

type store struct {
	//choreolint:hotlock
	persistMu sync.RWMutex
	dir       string
	jnl       *journal.Log
}

type shard struct {
	//choreolint:hotlock
	mu   sync.Mutex
	recs []string
}

// badDirectIO fsyncs through os.WriteFile while the persist lock is
// held.
func (s *store) badDirectIO() {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	os.WriteFile(s.dir, nil, 0o644) // want "os.WriteFile \(file I/O\) while persistMu is held"
}

// badSleepUnderShard sleeps under the shard lock.
func (sh *shard) badSleepUnderShard() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while mu is held"
}

// readDir does file I/O; callers under a hot lock inherit the taint.
func (s *store) readDir() ([]os.DirEntry, error) {
	return os.ReadDir(s.dir)
}

// badViaHelper reaches the I/O through a call.
func (s *store) badViaHelper() {
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
	s.readDir() // want "call to readDir performs file I/O while persistMu is held"
}

// badUnbufferedSend can block every reader behind the shard lock.
func (sh *shard) badUnbufferedSend(ch chan string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch <- "x" // want "potentially blocking channel send while mu is held"
}

// goodJournalAppend is the sanctioned exception: WAL appends must
// happen under the locks.
func (s *store) goodJournalAppend(rec []byte) error {
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
	_, err := s.jnl.Append(rec)
	return err
}

// goodBufferedSend cannot block: the channel has known capacity.
func (sh *shard) goodBufferedSend() {
	done := make(chan string, 1)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	done <- "x"
}

// goodSelectDefault cannot block: the default case bails out.
func (sh *shard) goodSelectDefault(ch chan string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select {
	case ch <- "x":
	default:
	}
}

// goodAfterRelease does its I/O outside the critical section.
func (s *store) goodAfterRelease() {
	s.persistMu.Lock()
	s.persistMu.Unlock()
	os.WriteFile(s.dir, nil, 0o644)
}

// persistRLock leaks the lock to its caller — the store's documented
// idiom.
func (s *store) persistRLock() func() {
	s.persistMu.RLock()
	return s.persistMu.RUnlock
}

// badAfterLeak holds the lock through the leaky idiom.
func (s *store) badAfterLeak() {
	release := s.persistRLock()
	defer release()
	os.ReadDir(s.dir) // want "os.ReadDir \(file I/O\) while persistMu is held"
}

// goodLeakReleased calls the release handle before the I/O.
func (s *store) goodLeakReleased() {
	release := s.persistRLock()
	release()
	os.ReadDir(s.dir)
}

// suppressed demonstrates a justified //lint:ignore.
func (s *store) suppressed() {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	//lint:ignore choreolint/lockheldio fixture demonstrating a justified suppression
	os.WriteFile(s.dir, nil, 0o644)
}
