// Package allocfree is the allocgate fixture: marked functions that
// allocate in the three canonical ways the gate must catch — an
// escaping closure, slice growth, interface boxing — plus a clean
// function proving the gate reports nothing on genuinely
// allocation-free code. The allocgate tests pin the findings to exact
// lines of this file; renumber them if you edit it.
package allocfree

// EscapingClosure captures x by reference in a returned closure: both
// the variable and the closure move to the heap.
//
//choreolint:allocfree
func EscapingClosure(n int) func() int {
	x := n
	return func() int { x++; return x }
}

// SliceGrowth returns a locally made slice: the backing array escapes,
// and append regrows it on the heap.
//
//choreolint:allocfree
func SliceGrowth(n int) []int {
	out := make([]int, 0, 4)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// InterfaceBoxing boxes an int into an interface value that escapes.
//
//choreolint:allocfree
func InterfaceBoxing(v int) any {
	var i any = v
	return i
}

// Clean is what the marker demands: index arithmetic over the caller's
// memory, nothing escaping.
//
//choreolint:allocfree
func Clean(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
