// Package lockorder is the seeded-violation fixture for the lockorder
// analyzer: a miniature of the store's lock hierarchy, with the
// persistMu inversions the analyzer must catch — direct, through the
// call graph, and through the leaky persistRLock idiom — next to the
// correct orders it must leave alone.
package lockorder

import "sync"

type store struct {
	persistMu    sync.RWMutex
	commitMu     sync.Mutex
	instAppendMu sync.Mutex
	mu           sync.Mutex
}

// goodOrder takes the outer lock first — the documented hierarchy.
func (s *store) goodOrder() {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
}

// badDirect inverts the hierarchy in one body.
func (s *store) badDirect() {
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
	s.commitMu.Lock() // want "commitMu acquired while persistMu is held"
	s.commitMu.Unlock()
}

func (s *store) takesCommit() {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
}

func (s *store) takesCommitDeep() { s.takesCommit() }

// badViaCall inverts the hierarchy two calls deep.
func (s *store) badViaCall() {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.takesCommitDeep() // want "acquires commitMu/instAppendMu while persistMu is held"
}

// persistRLock returns while still holding persistMu — callers hold it.
func (s *store) persistRLock() func() {
	s.persistMu.RLock()
	return s.persistMu.RUnlock
}

// badAfterLeak holds persistMu via the leaky idiom.
func (s *store) badAfterLeak() {
	unlock := s.persistRLock()
	defer unlock()
	s.instAppendMu.Lock() // want "instAppendMu acquired while persistMu is held"
	s.instAppendMu.Unlock()
}

// goodAfterRelease releases persistMu before taking the outer lock.
func (s *store) goodAfterRelease() {
	s.persistMu.RLock()
	s.persistMu.RUnlock()
	s.commitMu.Lock()
	s.commitMu.Unlock()
}

// goodOther may take unrelated locks under persistMu.
func (s *store) goodOther() {
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// suppressed demonstrates a justified //lint:ignore.
func (s *store) suppressed() {
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
	//lint:ignore choreolint/lockorder fixture demonstrating a justified suppression
	s.commitMu.Lock()
	s.commitMu.Unlock()
}
