// Package walexhaustive is the seeded-violation fixture for the
// walexhaustive analyzer: a journal record union with nil-dispatch
// switches that are exhaustive, missing a field, and missing the
// default case.
package walexhaustive

type recCreate struct{ ID string }
type recDelete struct{ ID string }
type recCommit struct{ ID string }

// walRecord mirrors the store's journal envelope: one exported
// pointer field per record type.
//
//choreolint:union
type walRecord struct {
	Create *recCreate
	Delete *recDelete
	Commit *recCommit
	// note is unexported scratch state, not part of the union contract.
	note *recCreate
}

func replayGood(rec *walRecord) string {
	switch {
	case rec.Create != nil:
		return "create"
	case rec.Delete != nil:
		return "delete"
	case rec.Commit != nil:
		return "commit"
	default:
		return "empty"
	}
}

func replayMissingField(rec *walRecord) string {
	switch { // want `does not cover field\(s\) Commit`
	case rec.Create != nil:
		return "create"
	case rec.Delete != nil:
		return "delete"
	default:
		return "empty"
	}
}

func replayNoDefault(rec *walRecord) string {
	switch { // want "no default case"
	case rec.Create != nil:
		return "create"
	case rec.Delete != nil:
		return "delete"
	case rec.Commit != nil:
		return "commit"
	}
	return ""
}

// plain is not marked: dispatches over it are not checked.
type plain struct {
	A *recCreate
	B *recDelete
}

func overPlain(p *plain) string {
	switch {
	case p.A != nil:
		return "a"
	}
	return ""
}

// overInts is an ordinary tagless switch, untouched by the check.
func overInts(a, b int) int {
	switch {
	case a > b:
		return a
	default:
		return b
	}
}
