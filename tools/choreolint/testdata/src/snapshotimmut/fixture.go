// Package snapshotimmut is the seeded-violation fixture for the
// snapshotimmut analyzer: a miniature of the store's publish-then-
// freeze world — a frozen snapshot type, a builder, helpers that write
// through their parameters — with the writes the analyzer must catch
// (direct, aliased, and through a helper call chain) next to the
// construction patterns it must leave alone.
package snapshotimmut

// Snapshot stands in for store.Snapshot: published data, immutable
// after construction.
//
//choreolint:frozen
type Snapshot struct {
	Version uint64
	parties map[string]int
	order   []string
}

// published is a package-level snapshot — never fresh.
var published = &Snapshot{parties: map[string]int{}}

// badDirect writes a package-level snapshot in place.
func badDirect() {
	published.Version++ // want "write to .*snapshotimmut.Snapshot"
}

// badAliased writes through a local alias of shared data.
func badAliased() {
	s := published
	s.parties["x"] = 1 // want "write to .*snapshotimmut.Snapshot"
}

// scribble writes its parameter: no local report, but callers passing
// non-fresh snapshots are flagged.
func scribble(s *Snapshot) {
	s.Version = 0
}

// scribbleDeep reaches the write through one more hop.
func scribbleDeep(s *Snapshot) {
	scribble(s)
}

// badViaHelper leaks shared data into a writer three calls deep.
func badViaHelper() {
	scribbleDeep(published) // want "call to scribbleDeep writes .*snapshotimmut.Snapshot"
}

// goodFresh may write: the snapshot is its own construction.
func goodFresh() *Snapshot {
	s := &Snapshot{parties: map[string]int{}}
	s.Version = 1
	s.parties["x"] = 1
	s.order = append(s.order, "x")
	return s
}

// goodFreshViaCall may write data proven fresh interprocedurally:
// goodFresh's every return is freshly constructed.
func goodFreshViaCall() *Snapshot {
	s := goodFresh()
	s.Version = 2
	scribbleDeep(s) // fresh argument: the helper writes our own data
	return s
}

// rebuild is the sanctioned commit path.
//
//choreolint:builder
func rebuild(cur *Snapshot) *Snapshot {
	next := &Snapshot{Version: cur.Version + 1, parties: map[string]int{}}
	next.order = append([]string(nil), cur.order...)
	return next
}

// suppressed demonstrates a justified //lint:ignore.
func suppressed() {
	//lint:ignore choreolint/snapshotimmut fixture demonstrating a justified suppression
	published.Version = 7
}
