// Package ctxfirst is the seeded-violation fixture for the ctxfirst
// analyzer: misplaced context parameters and detached contexts next
// to the conforming shapes.
package ctxfirst

import (
	"context"
	"net/http"
)

type svc struct{}

func (s *svc) Good(ctx context.Context, id string) error {
	_ = id
	return ctx.Err()
}

func (s *svc) BadOrder(id string, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = id
	return ctx.Err()
}

func (s *svc) BadDetach(ctx context.Context, id string) error {
	dctx := context.Background() // want `context.Background\(\) inside BadDetach`
	_, _ = dctx, id
	return ctx.Err()
}

func (s *svc) BadTODO(ctx context.Context) error {
	_ = ctx
	return work(context.TODO()) // want `context.TODO\(\) inside BadTODO`
}

func work(ctx context.Context) error { return ctx.Err() }

// handler has a context through the request; detaching loses the
// client hang-up signal.
func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context.Background\(\) inside handler`
	_, _, _ = w, r, ctx
}

// suppressedWrapped keeps a legacy wire order behind a justified
// suppression. The directive sits in the doc comment while the
// misplaced parameter is two lines further down inside the wrapped
// signature — the regression shape for directive widening, which must
// cover the whole signature, not just the line below the comment.
//
//lint:ignore choreolint/ctxfirst legacy wire order kept for compatibility
func (s *svc) suppressedWrapped(
	id string,
	ctx context.Context,
) error {
	_ = id
	return ctx.Err()
}

// detachedRoot owns its own lifetime: no context in scope, Background
// is the right call.
func detachedRoot() context.Context {
	return context.Background()
}

// sweeper documents its detachment with a justified suppression.
func sweeper(ctx context.Context) context.Context {
	_ = ctx
	//lint:ignore choreolint/ctxfirst the sweep's lifetime is owned by the job, not this request
	return context.Background()
}
