// Package errenvelope is the seeded-violation fixture for the
// errenvelope analyzer: a package that owns an error envelope (it
// declares writeErrorV2) with handlers that bypass it.
package errenvelope

import (
	"encoding/json"
	"net/http"
)

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErrorV2(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusInternalServerError, errorBody{Code: "internal", Message: err.Error()})
}

func goodHandler(w http.ResponseWriter, r *http.Request, err error) {
	_ = r
	writeErrorV2(w, err)
}

func badHTTPError(w http.ResponseWriter, r *http.Request) {
	_ = r
	http.Error(w, "boom", http.StatusInternalServerError) // want "http.Error bypasses the error envelope"
}

func badRawStatus(w http.ResponseWriter, r *http.Request) {
	_ = r
	w.WriteHeader(http.StatusNotFound) // want `WriteHeader\(404\) writes an error status outside the envelope helpers`
	_, _ = w.Write([]byte(`{"oops":"not the envelope"}`))
}

// okSuccessStatus writes a success status directly; only error
// statuses must flow through the envelope.
func okSuccessStatus(w http.ResponseWriter, r *http.Request) {
	_ = r
	w.WriteHeader(http.StatusNoContent)
}
