// Package faultpoint is the seeded-violation fixture for the
// faultpoint analyzer: computed, duplicated, and off-catalog failpoint
// names next to the conforming shapes.
package faultpoint

import "repro/internal/fault"

// Conforming: a catalog constant registered once.
var good = fault.Point{}

var okPoint = fault.New(fault.PointJournalOpenMkdir)

func pointName() string { return "journal.open.mkdir" }

var computed = fault.New(pointName()) // want "failpoint name must be a compile-time constant"

var rogue = fault.New("rogue.surprise") // want `failpoint "rogue.surprise" is not in the fault catalog`

var dup = fault.New(fault.PointJournalOpenMkdir) // want `failpoint "journal.open.mkdir" registered twice in this package`

func armSites() {
	// Conforming: catalog constant, and a non-constant name left to the
	// runtime lookup.
	_ = fault.Arm(fault.PointJournalAppendWrite, fault.Trigger{})
	for _, pt := range []string{fault.PointJournalAppendWrite, fault.PointJournalAppendSync} {
		_ = fault.Arm(pt, fault.Trigger{})
	}

	_ = fault.Arm("journal.append.writ", fault.Trigger{}) // want `arming failpoint "journal.append.writ", which is not in the fault catalog`
	_ = fault.Disarm("no.such.point")                     // want `arming failpoint "no.such.point", which is not in the fault catalog`
	_, _ = fault.Fires("no.such.point")                   // want `arming failpoint "no.such.point", which is not in the fault catalog`

	_ = fault.ArmSpec(fault.PointJournalAppendWrite + "=p:0.05")
	_ = fault.ArmSpec("journal.append.write=always,bogus.name=n:3") // want `spec arms failpoint "bogus.name", which is not in the fault catalog`
}

func use() {
	_ = good
	_ = okPoint
	_ = computed
	_ = rogue
	_ = dup
}
