// Package replaydeterminism is the seeded-violation fixture for the
// replaydeterminism analyzer: a //choreolint:replay root whose
// reachable functions consult the clock, randomness, and map
// iteration order — and the sorted/unreachable variants that must
// stay clean.
package replaydeterminism

import (
	"math/rand"
	"sort"
	"time"
)

type state struct {
	entries map[string]int
	applied []string
	stamp   time.Time
}

// replay is the recovery root.
//
//choreolint:replay
func (s *state) replay(recs []string) {
	for _, r := range recs {
		s.apply(r)
	}
}

func (s *state) apply(r string) {
	s.stamp = time.Now()   // want "time.Now in the replay path"
	if rand.Intn(2) == 0 { // want "math/rand.Intn in the replay path"
		s.entries[r]++
	}
	s.rebuildKeys()
	s.rebuildSorted()
}

// rebuildKeys leaks map iteration order into applied.
func (s *state) rebuildKeys() {
	var keys []string
	for k := range s.entries {
		keys = append(keys, k) // want "keys accumulates in map iteration order"
	}
	s.applied = keys
}

// rebuildSorted does the same but sorts, so the result is a function
// of the map's contents only.
func (s *state) rebuildSorted() {
	var keys []string
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.applied = keys
}

// liveOnly is not reachable from the replay root; the live path may
// use the clock freely.
func (s *state) liveOnly() time.Time {
	return time.Now()
}
