package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// directiveSrc exercises every widening shape: a directive in a doc
// comment covering a wrapped signature (but not the body), one above a
// struct field whose own doc pushes the field line down, one above a
// multi-line call statement, and a bare directive with no construct
// (covering only its own line and the next).
const directiveSrc = `package p

// Wrapped keeps a legacy parameter order.
//
//lint:ignore choreolint/ctxfirst legacy wire order
func Wrapped(
	a int,
	b string,
) {
	inBody(a, b)
}

type S struct {
	//lint:ignore choreolint/errenvelope field carries raw errors
	// extraDoc pushes the field line further down.
	Field func(
		x int,
	) error
	Other int
}

func body() {
	//lint:ignore * wrapped call below
	x := compute(
		1,
		2,
	)
	_ = x
	y := compute(3, 4)
	_ = y
}

//lint:ignore choreolint/lockorder bare directive

func compute(a, b int) int { return a + b }
func inBody(a int, b string) {}
`

// lineOf returns the 1-based line of the first occurrence of sub.
func lineOf(t *testing.T, sub string) int {
	t.Helper()
	i := strings.Index(directiveSrc, sub)
	if i < 0 {
		t.Fatalf("%q not in source", sub)
	}
	return 1 + strings.Count(directiveSrc[:i], "\n")
}

// TestIgnoreWidening pins the suppression spans for multi-line
// declarations, struct fields, and wrapped statements — the shapes a
// line-below-only rule misses — and the narrowness guarantees: a
// function directive never covers the body, and a directive never
// covers an unrelated neighbor.
func TestIgnoreWidening(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set := parseIgnores(fset, []*ast.File{file})

	at := func(sub string) token.Position {
		return token.Position{Filename: "fixture.go", Line: lineOf(t, sub)}
	}
	cases := []struct {
		sub      string
		analyzer string
		want     bool
	}{
		// The whole wrapped signature is covered...
		{"func Wrapped(", "ctxfirst", true},
		{"b string,", "ctxfirst", true},
		// ...but only for the named analyzer, and never the body.
		{"b string,", "lockorder", false},
		{"inBody(a, b)", "ctxfirst", false},
		// A field directive spans the field even when extra doc lines
		// push it down, wrapped type included; the next field is out.
		{"Field func(", "errenvelope", true},
		{"x int,", "errenvelope", true},
		{"Other int", "errenvelope", false},
		// "*" covers every analyzer across the wrapped statement; the
		// following statement is out.
		{"x := compute(", "ctxfirst", true},
		{"2,", "lockorder", true},
		{"y := compute(3, 4)", "lockorder", false},
		// A bare directive still covers its own line and the next.
		{"//lint:ignore choreolint/lockorder bare directive", "lockorder", true},
	}
	for _, tc := range cases {
		if got := set.suppresses(at(tc.sub), tc.analyzer); got != tc.want {
			t.Errorf("suppresses(line of %q, %s) = %v, want %v", tc.sub, tc.analyzer, got, tc.want)
		}
	}

	// The bare directive's span is its line plus one.
	bare := lineOf(t, "bare directive")
	if set.suppresses(token.Position{Filename: "fixture.go", Line: bare + 2}, "lockorder") {
		t.Errorf("bare directive covers line %d; want only %d-%d", bare+2, bare, bare+1)
	}
}

// TestIgnoreRequiresReason checks that a reasonless directive is inert:
// suppressions must stay justified.
func TestIgnoreRequiresReason(t *testing.T) {
	src := "package p\n\n//lint:ignore choreolint/lockorder\nvar X int\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "bare.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set := parseIgnores(fset, []*ast.File{file})
	if set.suppresses(token.Position{Filename: "bare.go", Line: 4}, "lockorder") {
		t.Error("reasonless //lint:ignore suppressed a finding; want it ignored")
	}
}
