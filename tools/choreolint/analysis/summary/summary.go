// Package summary is choreolint's interprocedural engine: per-function
// facts computed to a fixed point over the package's static call graph,
// with method-value and interface-callee approximation, and exported
// across package boundaries through the vet facts (vetx) protocol so a
// cross-package call is not a blind spot.
//
// A pass contributes a Collector: a Scan function that computes one
// function's fact from its own body plus the current estimate of every
// callee's fact (same-package estimates converge during the fixed
// point; cross-package facts come from the dependency's exported
// summary file). Facts must grow monotonically under Scan — start
// empty, add bits/slots/strings as evidence appears — which is what
// makes the iteration terminate.
//
// The engine deliberately does not import package analysis: analysis
// hands each Pass a computed *Info, and the pass packages use both.
package summary

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// A Fact is one analyzer's knowledge about one function. The three
// fields are generic carriers; each collector defines their meaning
// (lockorder uses Bits, snapshotimmut uses Params for written
// parameter slots and Strings for the frozen types reached).
type Fact struct {
	// Bits is an analyzer-defined bitset.
	Bits uint64 `json:"b,omitempty"`
	// Params is a sorted set of parameter slots (receiver first, when
	// the function has one) with an analyzer-defined property.
	Params []int `json:"p,omitempty"`
	// Strings is a sorted set of analyzer-defined strings.
	Strings []string `json:"s,omitempty"`
}

// Empty reports whether the fact carries no information.
func (f Fact) Empty() bool {
	return f.Bits == 0 && len(f.Params) == 0 && len(f.Strings) == 0
}

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool {
	return f.Bits == g.Bits && slices.Equal(f.Params, g.Params) && slices.Equal(f.Strings, g.Strings)
}

// HasParam reports whether slot is in Params.
func (f Fact) HasParam(slot int) bool {
	_, ok := slices.BinarySearch(f.Params, slot)
	return ok
}

// AddParam adds slot to Params, keeping the set sorted.
func (f *Fact) AddParam(slot int) {
	if i, ok := slices.BinarySearch(f.Params, slot); !ok {
		f.Params = slices.Insert(f.Params, i, slot)
	}
}

// AddString adds s to Strings, keeping the set sorted.
func (f *Fact) AddString(s string) {
	if i, ok := slices.BinarySearch(f.Strings, s); !ok {
		f.Strings = slices.Insert(f.Strings, i, s)
	}
}

// MergeStrings folds another fact's strings in.
func (f *Fact) MergeStrings(g Fact) {
	for _, s := range g.Strings {
		f.AddString(s)
	}
}

// normalize sorts the set fields so facts compare and encode
// deterministically.
func (f Fact) normalize() Fact {
	slices.Sort(f.Params)
	f.Params = slices.Compact(f.Params)
	slices.Sort(f.Strings)
	f.Strings = slices.Compact(f.Strings)
	return f
}

// A Lookup returns the current fact estimate for any function, local
// (converging during the fixed point) or imported (from the defining
// package's exported summary). Unknown functions yield the zero Fact.
type Lookup func(fn *types.Func) Fact

// A Collector computes one analyzer's per-function facts.
type Collector struct {
	// Name keys the facts in summary files; by convention the
	// analyzer's name.
	Name string
	// Scan computes fn's fact from its body and the current estimates
	// of its callees. It is re-invoked until the package's facts reach
	// a fixed point, so it must be monotone: given bigger callee facts
	// it returns an equal-or-bigger fact.
	Scan func(c *Context, fn *types.Func, decl *ast.FuncDecl, cur Lookup) Fact
}

// An Importer resolves the exported summary file of a dependency
// package. The vettool driver implements it over the PackageVetx file
// map; fixture drivers may return nil for everything.
type Importer interface {
	// Facts returns pkgPath's summary file, or nil when the package
	// exports none (standard library, non-module dependencies).
	Facts(pkgPath string) *File
}

// A File is the wire form of one package's exported summary, written
// as deterministic JSON into the package's vetx facts file.
type File struct {
	// Funcs maps FuncKey → collector name → fact.
	Funcs map[string]map[string]Fact `json:"funcs,omitempty"`
	// Types maps marker name → sorted type keys, for every
	// //choreolint:<marker> type directive in the package (for example
	// Types["frozen"] lists the package's frozen types).
	Types map[string][]string `json:"types,omitempty"`
}

// Decode parses a summary file; empty input yields an empty file.
func Decode(data []byte) (*File, error) {
	f := &File{}
	if len(data) == 0 {
		return f, nil
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, err
	}
	return f, nil
}

// Context is one package's view for summary computation: syntax,
// types, call graph, and the importer for cross-package facts.
type Context struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Graph     *Graph
	// Imports resolves dependency summaries; nil means cross-package
	// facts are unavailable (fixture harness).
	Imports Importer

	// Cache is collector scratch space: Scan runs once per function
	// per fixed-point round, so per-package precomputation (marker
	// tables, lock sets) is memoized here under a collector-chosen key.
	Cache map[string]any

	typeMarkers map[string][]string // marker → local type keys, lazily built
	funcMarkers map[string]map[*types.Func]bool
	imported    map[string]*File // pkg path → decoded file (nil = none)
}

// FuncKey is the stable cross-package identity of a function or
// method: types.Func.FullName of its generic origin, for example
// "(*repro/internal/afsa.Automaton).Reintern".
func FuncKey(fn *types.Func) string { return fn.Origin().FullName() }

// TypeKey is the stable cross-package identity of a named type:
// "pkgpath.Name".
func TypeKey(obj *types.TypeName) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// importedFile returns (and caches) the decoded summary of pkgPath.
func (c *Context) importedFile(pkgPath string) *File {
	if c.Imports == nil {
		return nil
	}
	if f, ok := c.imported[pkgPath]; ok {
		return f
	}
	if c.imported == nil {
		c.imported = map[string]*File{}
	}
	f := c.Imports.Facts(pkgPath)
	c.imported[pkgPath] = f
	return f
}

// importedFact resolves one function's fact from its defining
// package's summary file.
func (c *Context) importedFact(collector string, fn *types.Func) Fact {
	if fn.Pkg() == nil {
		return Fact{}
	}
	f := c.importedFile(fn.Pkg().Path())
	if f == nil {
		return Fact{}
	}
	return f.Funcs[FuncKey(fn)][collector]
}

// MarkedTypes returns the type keys carrying //choreolint:<marker> —
// the package's own marked types plus those of its direct imports
// (read from their summary files). Types a package can write to are
// named in its files, so direct imports cover the reachable set.
func (c *Context) MarkedTypes(marker string) map[string]bool {
	out := map[string]bool{}
	for _, key := range c.localTypeMarkers()[marker] {
		out[key] = true
	}
	if c.Pkg != nil {
		for _, imp := range c.Pkg.Imports() {
			if f := c.importedFile(imp.Path()); f != nil {
				for _, key := range f.Types[marker] {
					out[key] = true
				}
			}
		}
	}
	return out
}

// MarkedFuncObjs returns the declared functions whose doc comment
// carries //choreolint:<marker>.
func (c *Context) MarkedFuncObjs(marker string) map[*types.Func]bool {
	if set, ok := c.funcMarkers[marker]; ok {
		return set
	}
	set := map[*types.Func]bool{}
	for _, file := range c.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !docHasMarker(fd.Doc, marker) {
				continue
			}
			if fn, ok := c.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				set[fn] = true
			}
		}
	}
	if c.funcMarkers == nil {
		c.funcMarkers = map[string]map[*types.Func]bool{}
	}
	c.funcMarkers[marker] = set
	return set
}

// localTypeMarkers scans the package's type declarations once for
// every //choreolint: marker.
func (c *Context) localTypeMarkers() map[string][]string {
	if c.typeMarkers != nil {
		return c.typeMarkers
	}
	c.typeMarkers = map[string][]string{}
	for _, file := range c.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				obj, ok := c.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				for _, marker := range docMarkers(doc) {
					c.typeMarkers[marker] = append(c.typeMarkers[marker], TypeKey(obj))
				}
			}
		}
	}
	for marker := range c.typeMarkers {
		slices.Sort(c.typeMarkers[marker])
	}
	return c.typeMarkers
}

// docHasMarker reports whether the comment group contains the exact
// //choreolint:<marker> directive.
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	return slices.Contains(docMarkers(doc), marker)
}

// docMarkers returns every //choreolint:<marker> in the group.
func docMarkers(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		if m, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "//choreolint:"); ok {
			out = append(out, m)
		}
	}
	return out
}

// Info is the computed summary of one package: every collector's
// per-function facts at their fixed point, plus the graph and marker
// tables the passes read.
type Info struct {
	ctx   *Context
	local map[string]map[*types.Func]Fact
}

// Compute runs every collector to its fixed point. The context's
// graph is built on demand.
func Compute(ctx *Context, collectors []*Collector) *Info {
	if ctx.Graph == nil {
		ctx.Graph = BuildGraph(ctx.Files, ctx.TypesInfo)
	}
	if ctx.Cache == nil {
		ctx.Cache = map[string]any{}
	}
	info := &Info{ctx: ctx, local: map[string]map[*types.Func]Fact{}}
	for _, c := range collectors {
		facts := map[*types.Func]Fact{}
		cur := func(fn *types.Func) Fact {
			fn = fn.Origin()
			if fn.Pkg() == ctx.Pkg {
				return facts[fn]
			}
			return ctx.importedFact(c.Name, fn)
		}
		// Monotone facts over a finite lattice reach the fixed point in
		// at most one round per function; the cap is a safety net
		// against a non-monotone Scan, not a tuning knob.
		limit := len(ctx.Graph.Decls) + 2
		for round := 0; ; round++ {
			changed := false
			for fn, decl := range ctx.Graph.Decls {
				nf := c.Scan(ctx, fn, decl, cur).normalize()
				if !nf.Equal(facts[fn]) {
					facts[fn] = nf
					changed = true
				}
			}
			if !changed || round >= limit {
				break
			}
		}
		info.local[c.Name] = facts
	}
	return info
}

// Context returns the package context the summary was computed over.
func (in *Info) Context() *Context { return in.ctx }

// Graph returns the package call graph.
func (in *Info) Graph() *Graph { return in.ctx.Graph }

// Fact returns collector's fact for fn: the local fixed point for
// same-package functions, the defining package's exported fact
// otherwise.
func (in *Info) Fact(collector string, fn *types.Func) Fact {
	fn = fn.Origin()
	if fn.Pkg() == in.ctx.Pkg {
		return in.local[collector][fn]
	}
	return in.ctx.importedFact(collector, fn)
}

// Lookup curries Fact for one collector.
func (in *Info) Lookup(collector string) Lookup {
	return func(fn *types.Func) Fact { return in.Fact(collector, fn) }
}

// MarkedTypes returns the //choreolint:<marker> type keys visible to
// the package (its own plus direct imports').
func (in *Info) MarkedTypes(marker string) map[string]bool {
	return in.ctx.MarkedTypes(marker)
}

// MarkedFuncObjs returns the package's //choreolint:<marker> functions.
func (in *Info) MarkedFuncObjs(marker string) map[*types.Func]bool {
	return in.ctx.MarkedFuncObjs(marker)
}

// Encode serializes the package's exported summary: every non-empty
// function fact plus the package's type markers, as deterministic JSON
// (sorted object keys), so the go command's content-addressed caching
// of vetx files stays stable.
func (in *Info) Encode() ([]byte, error) {
	file := File{Types: in.ctx.localTypeMarkers()}
	for name, facts := range in.local {
		for fn, f := range facts {
			if f.Empty() {
				continue
			}
			if file.Funcs == nil {
				file.Funcs = map[string]map[string]Fact{}
			}
			key := FuncKey(fn)
			if file.Funcs[key] == nil {
				file.Funcs[key] = map[string]Fact{}
			}
			file.Funcs[key][name] = f
		}
	}
	if len(file.Types) == 0 {
		file.Types = nil
	}
	return json.Marshal(file)
}
