package summary

import (
	"go/ast"
	"go/types"
)

// Graph is the static intra-package call graph: declared functions and
// methods, the same-package functions each one calls directly, and an
// over-approximation of its indirect callees (method values taken,
// same-package implementations of interface methods it calls).
// Function literals are attributed to the declaration they appear in:
// a goroutine or closure body inside f counts as f's calls, the
// conservative direction for every check built on the graph.
type Graph struct {
	// Decls maps each declared function object to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Calls maps each declared function to the distinct same-package
	// functions it calls directly (only those with a declaration).
	Calls map[*types.Func][]*types.Func
	// Approx maps each declared function to same-package functions it
	// may call indirectly: functions and methods whose value it takes
	// (a method value passed as a callback may be invoked), and
	// declared methods implementing an interface method it calls.
	Approx map[*types.Func][]*types.Func
}

// BuildGraph constructs the package's call graph from its files.
func BuildGraph(files []*ast.File, info *types.Info) *Graph {
	g := &Graph{
		Decls:  map[*types.Func]*ast.FuncDecl{},
		Calls:  map[*types.Func][]*types.Func{},
		Approx: map[*types.Func][]*types.Func{},
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				g.Decls[fn] = fd
			}
		}
	}
	// Declared methods by name, for the interface-callee approximation.
	methodsByName := map[string][]*types.Func{}
	for fn := range g.Decls {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			methodsByName[fn.Name()] = append(methodsByName[fn.Name()], fn)
		}
	}
	for fn, fd := range g.Decls {
		seenCall := map[*types.Func]bool{}
		seenApprox := map[*types.Func]bool{}
		addApprox := func(callee *types.Func) {
			if _, declared := g.Decls[callee]; declared && !seenApprox[callee] {
				seenApprox[callee] = true
				g.Approx[fn] = append(g.Approx[fn], callee)
			}
		}
		// Identifiers consumed as direct callees; every other use of a
		// declared function's identifier is a value reference.
		calleeIdents := map[*ast.Ident]bool{}
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			calleeIdents[id] = true
			callee, ok := info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			callee = callee.Origin()
			if recv := callee.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				// Interface method call: approximate with every declared
				// same-package method of that name whose receiver type
				// implements the interface.
				iface, _ := recv.Type().Underlying().(*types.Interface)
				if iface != nil {
					for _, m := range methodsByName[callee.Name()] {
						rt := m.Type().(*types.Signature).Recv().Type()
						if types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface) {
							addApprox(m)
						}
					}
				}
				return true
			}
			if _, declared := g.Decls[callee]; declared && !seenCall[callee] {
				seenCall[callee] = true
				g.Calls[fn] = append(g.Calls[fn], callee)
			}
			return true
		})
		ast.Inspect(fd, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			if ref, ok := info.Uses[id].(*types.Func); ok {
				addApprox(ref.Origin())
			}
			return true
		})
	}
	return g
}

// Implementers returns the declared same-package methods that may
// stand behind a call to the interface method iface: same name,
// receiver type implementing the interface. Nil for a non-interface
// method.
func (g *Graph) Implementers(ifaceMethod *types.Func) []*types.Func {
	recv := ifaceMethod.Type().(*types.Signature).Recv()
	if recv == nil || !types.IsInterface(recv.Type()) {
		return nil
	}
	iface, _ := recv.Type().Underlying().(*types.Interface)
	if iface == nil {
		return nil
	}
	var out []*types.Func
	for fn := range g.Decls {
		r := fn.Type().(*types.Signature).Recv()
		if r == nil || fn.Name() != ifaceMethod.Name() {
			continue
		}
		rt := r.Type()
		if types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface) {
			out = append(out, fn)
		}
	}
	return out
}

// Reachable returns every function reachable from roots through
// direct calls — and through the approximated indirect edges when
// approx is set — including the roots themselves.
func (g *Graph) Reachable(roots []*types.Func, approx bool) map[*types.Func]bool {
	reached := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reached[fn] {
			return
		}
		reached[fn] = true
		for _, callee := range g.Calls[fn] {
			visit(callee)
		}
		if approx {
			for _, callee := range g.Approx[fn] {
				visit(callee)
			}
		}
	}
	for _, fn := range roots {
		visit(fn)
	}
	return reached
}
