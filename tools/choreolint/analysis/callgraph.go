package analysis

import (
	"go/ast"
	"go/types"
)

// CallGraph is the static intra-package call graph: declared functions
// and methods, and the same-package functions each one calls directly.
// Calls through function values, interfaces, or other packages are
// outside it — the analyzers built on top are checks for invariants
// this codebase maintains through direct calls, not a whole-program
// escape analysis, and docs/lint.md documents that boundary.
type CallGraph struct {
	// Decls maps each declared function object to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Calls maps each declared function to the distinct same-package
	// functions it calls (only those with a declaration in Decls).
	Calls map[*types.Func][]*types.Func
}

// BuildCallGraph constructs the package's call graph. Function
// literals are attributed to the declaration they appear in: a
// goroutine or closure body inside f counts as f's calls, which is
// the conservative direction for lock-order and determinism checks.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{Decls: map[*types.Func]*ast.FuncDecl{}, Calls: map[*types.Func][]*types.Func{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.Decls[fn] = fd
			}
		}
	}
	for fn, fd := range g.Decls {
		seen := map[*types.Func]bool{}
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := CalleeOf(pass.TypesInfo, call).(*types.Func)
			if !ok || seen[callee] {
				return true
			}
			if _, declared := g.Decls[callee]; declared {
				seen[callee] = true
				g.Calls[fn] = append(g.Calls[fn], callee)
			}
			return true
		})
	}
	return g
}

// Reachable returns every function reachable from roots, including the
// roots themselves.
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	reached := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reached[fn] {
			return
		}
		reached[fn] = true
		for _, callee := range g.Calls[fn] {
			visit(callee)
		}
	}
	for _, fn := range roots {
		visit(fn)
	}
	return reached
}
