package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Suppression and marker directives.
//
// A finding is silenced with a staticcheck-style ignore directive on
// the flagged line, the line directly above it, or — when the
// directive documents or directly precedes a declaration, struct
// field, or simple statement — anywhere within that construct's span:
//
//	//lint:ignore choreolint/lockorder reason the checkpoint cannot run here
//	s.persistMu.RLock()
//
// The span rule is what makes multi-line constructs suppressible: a
// directive in a function's doc comment covers the whole (possibly
// wrapped) signature, a directive above a struct field covers the
// field even when its own doc comment pushes the field line further
// down, and a directive above a multi-line assignment or call
// statement covers its continuation lines. Spans stay narrow on
// purpose — a function directive covers the signature, never the
// body, so one directive cannot blanket-silence a whole function.
//
// The directive names one analyzer (with or without the "choreolint/"
// prefix), a comma-separated list, or "*" for all, and must carry a
// reason — a bare //lint:ignore is itself ignored, so suppressions
// stay justified. Marker directives (//choreolint:union,
// //choreolint:replay, //choreolint:frozen, //choreolint:builder,
// //choreolint:hotlock, //choreolint:allocfree) are the opposite: they
// opt declarations into a check; analyzers read them through
// UnionStructs, MarkedFuncs, MarkedFields and the summary engine's
// marker tables.

// ignoreRange is one directive's coverage: the line span it silences
// and the analyzers it names.
type ignoreRange struct {
	from, to int
	names    []string
}

// ignoreSet records each file's directive ranges.
type ignoreSet map[string][]ignoreRange

// parseIgnores collects every //lint:ignore directive and computes its
// line span: its own line and the following one always, widened to the
// full span of the syntax construct it documents or directly precedes.
func parseIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := ignoreSet{}
	for _, file := range files {
		filename := ""
		names := map[int][]string{} // directive line → analyzer names
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: not a valid suppression
				}
				pos := fset.Position(c.Pos())
				filename = pos.Filename
				names[pos.Line] = append(names[pos.Line], strings.Split(fields[0], ",")...)
			}
		}
		if len(names) == 0 {
			continue
		}
		ends := map[int]int{} // directive line → last covered line
		for line := range names {
			ends[line] = line + 1
		}
		widenIgnores(fset, file, names, ends)
		for line, ns := range names {
			set[filename] = append(set[filename], ignoreRange{from: line, to: ends[line], names: ns})
		}
	}
	return set
}

// widenIgnores extends each directive's coverage over the syntax
// construct it is attached to. A directive is attached to a node when
// it sits anywhere in the node's doc comment, on the line directly
// above the node, or on the node's first line (trailing comment).
func widenIgnores(fset *token.FileSet, file *ast.File, names map[int][]string, ends map[int]int) {
	attach := func(doc *ast.CommentGroup, start, end token.Pos) {
		startLine := fset.Position(start).Line
		endLine := fset.Position(end).Line
		claim := func(line int) {
			if _, ok := names[line]; ok && endLine > ends[line] {
				ends[line] = endLine
			}
		}
		claim(startLine - 1)
		claim(startLine)
		if doc != nil {
			for _, c := range doc.List {
				claim(fset.Position(c.Pos()).Line)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			// The signature only: a directive on a function must not
			// silence findings throughout its body.
			attach(x.Doc, x.Pos(), x.Type.End())
		case *ast.GenDecl:
			attach(x.Doc, x.Pos(), x.End())
		case *ast.TypeSpec:
			attach(x.Doc, x.Pos(), x.End())
		case *ast.ValueSpec:
			attach(x.Doc, x.Pos(), x.End())
		case *ast.Field:
			attach(x.Doc, x.Pos(), x.End())
		case *ast.KeyValueExpr:
			attach(nil, x.Pos(), x.End())
		case *ast.AssignStmt, *ast.ExprStmt, *ast.SendStmt, *ast.IncDecStmt,
			*ast.DeferStmt, *ast.GoStmt, *ast.ReturnStmt, *ast.DeclStmt:
			// Simple statements span only their own expressions, so the
			// widening covers wrapped calls and literals without
			// swallowing a block.
			attach(nil, n.Pos(), n.End())
		}
		return true
	})
}

// suppresses reports whether a directive covering posn's line names
// analyzer (or "*").
func (s ignoreSet) suppresses(posn token.Position, analyzer string) bool {
	for _, r := range s[posn.Filename] {
		if posn.Line < r.from || posn.Line > r.to {
			continue
		}
		for _, name := range r.names {
			name = strings.TrimPrefix(name, "choreolint/")
			if name == "*" || name == analyzer {
				return true
			}
		}
	}
	return false
}

// hasMarker reports whether the doc comment carries //choreolint:<marker>.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//choreolint:"+marker {
			return true
		}
	}
	return false
}

// UnionStructs returns the struct types declared in the package whose
// doc comment carries //choreolint:union — closed unions whose
// nil-dispatch switches walexhaustive keeps exhaustive.
func UnionStructs(pass *Pass) map[*ast.TypeSpec]*ast.StructType {
	out := map[*ast.TypeSpec]*ast.StructType{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if hasMarker(ts.Doc, "union") || (len(gd.Specs) == 1 && hasMarker(gd.Doc, "union")) {
					out[ts] = st
				}
			}
		}
	}
	return out
}

// MarkedFuncs returns the function declarations whose doc comment
// carries //choreolint:<marker> (for example the replay roots of
// replaydeterminism).
func MarkedFuncs(pass *Pass, marker string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasMarker(fd.Doc, marker) {
				out = append(out, fd)
			}
		}
	}
	return out
}

// MarkedFields returns the struct fields whose doc or trailing comment
// carries //choreolint:<marker> (for example the hot mutexes lockheldio
// tracks), as their variable objects so same-named fields on different
// structs stay distinct.
func MarkedFields(pass *Pass, marker string) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasMarker(field.Doc, marker) && !hasMarker(field.Comment, marker) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}
