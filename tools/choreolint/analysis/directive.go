package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression and marker directives.
//
// A finding is silenced with a staticcheck-style ignore directive on
// the flagged line or the line directly above it:
//
//	//lint:ignore choreolint/lockorder reason the checkpoint cannot run here
//	s.persistMu.RLock()
//
// The directive names one analyzer (with or without the "choreolint/"
// prefix), a comma-separated list, or "*" for all, and must carry a
// reason — a bare //lint:ignore is itself ignored, so suppressions
// stay justified. Marker directives (//choreolint:union,
// //choreolint:replay) are the opposite: they opt declarations into a
// check; analyzers read them through UnionStructs and MarkedFuncs.

// ignoreSet records, per file and line, which analyzers are silenced.
type ignoreSet map[string]map[int][]string

// parseIgnores collects every //lint:ignore directive. The directive
// suppresses matching findings on its own line and the following one.
func parseIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := ignoreSet{}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: not a valid suppression
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				names := strings.Split(fields[0], ",")
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return set
}

// suppresses reports whether a directive at posn's line or the line
// above names analyzer (or "*").
func (s ignoreSet) suppresses(posn token.Position, analyzer string) bool {
	lines := s[posn.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, name := range lines[line] {
			name = strings.TrimPrefix(name, "choreolint/")
			if name == "*" || name == analyzer {
				return true
			}
		}
	}
	return false
}

// hasMarker reports whether the doc comment carries //choreolint:<marker>.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//choreolint:"+marker {
			return true
		}
	}
	return false
}

// UnionStructs returns the struct types declared in the package whose
// doc comment carries //choreolint:union — closed unions whose
// nil-dispatch switches walexhaustive keeps exhaustive.
func UnionStructs(pass *Pass) map[*ast.TypeSpec]*ast.StructType {
	out := map[*ast.TypeSpec]*ast.StructType{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if hasMarker(ts.Doc, "union") || (len(gd.Specs) == 1 && hasMarker(gd.Doc, "union")) {
					out[ts] = st
				}
			}
		}
	}
	return out
}

// MarkedFuncs returns the function declarations whose doc comment
// carries //choreolint:<marker> (for example the replay roots of
// replaydeterminism).
func MarkedFuncs(pass *Pass, marker string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasMarker(fd.Doc, marker) {
				out = append(out, fd)
			}
		}
	}
	return out
}
