// Package analysis is the minimal analyzer framework choreolint is
// built on: an Analyzer runs over one type-checked package and reports
// position-anchored diagnostics. It mirrors the shape of
// golang.org/x/tools/go/analysis — Name/Doc/Run, a Pass carrying the
// package and its type information, Reportf — but is self-contained on
// the standard library, because this module deliberately has no
// external dependencies. Drivers (the vettool protocol in package main,
// the checktest fixture harness) load and type-check packages, run the
// analyzers, and apply the //lint:ignore suppression pass (see
// directive.go) before surfacing diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/tools/choreolint/analysis/summary"
)

// An Analyzer checks one invariant over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is the one-paragraph description shown by `choreolint help`.
	Doc string
	// Run performs the check, reporting findings through pass.Reportf.
	// The returned error aborts the whole run (reserved for internal
	// failures, not findings).
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Summary carries the package's interprocedural function
	// summaries, call graph, and marker tables (see
	// tools/choreolint/analysis/summary). Drivers compute it once per
	// package and share it across analyzers.
	Summary *summary.Info

	diags []Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes each analyzer over the package and returns the
// surviving diagnostics: //lint:ignore-suppressed findings and
// findings in _test.go files are dropped (the invariants govern
// production code; tests violate them deliberately — seeded
// randomness, detached contexts in helpers, raw statuses in
// fixtures), the rest come back in deterministic order: sorted by
// file, line, column, analyzer name, then message, so repeated runs
// and CI logs diff cleanly.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sum *summary.Info) ([]Diagnostic, error) {
	ignores := parseIgnores(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Summary: sum}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			posn := fset.Position(d.Pos)
			if strings.HasSuffix(posn.Filename, "_test.go") || ignores.suppresses(posn, a.Name) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		switch {
		case pi.Filename != pj.Filename:
			return pi.Filename < pj.Filename
		case pi.Line != pj.Line:
			return pi.Line < pj.Line
		case pi.Column != pj.Column:
			return pi.Column < pj.Column
		case out[i].Analyzer != out[j].Analyzer:
			return out[i].Analyzer < out[j].Analyzer
		default:
			return out[i].Message < out[j].Message
		}
	})
	return out, nil
}

// Preorder walks every node of every file in depth-first preorder.
func Preorder(files []*ast.File, f func(ast.Node)) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}

// CalleeOf resolves the object a call expression invokes, unwrapping
// parentheses; nil when the callee is not a named function or method
// (a function literal, a conversion, a call through an interface
// value resolves to the interface method).
func CalleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// IsPkgCall reports whether call invokes the package-level function
// path.name (for example "time".Now or "net/http".Error).
func IsPkgCall(info *types.Info, call *ast.CallExpr, path, name string) bool {
	obj := CalleeOf(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false
	}
	return obj.Pkg().Path() == path && obj.Name() == name
}

// ReceiverField returns the name of the struct field a method call's
// receiver resolves to: for `s.persistMu.RLock()` the call.Fun is the
// selector `s.persistMu.RLock`, whose X (`s.persistMu`) selects the
// field persistMu. Empty when the receiver is not a field selection or
// a plain variable.
func ReceiverField(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[recv.Sel].(*types.Var); ok && obj.IsField() {
			return obj.Name()
		}
	case *ast.Ident:
		if obj, ok := info.Uses[recv].(*types.Var); ok {
			return obj.Name()
		}
	}
	return ""
}

// ReceiverFieldVar resolves a method call's receiver to the struct
// field it selects — the variable object, not just its name, so two
// same-named fields on different structs stay distinct. Nil when the
// receiver is not a field selection.
func ReceiverFieldVar(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[recv.Sel].(*types.Var); ok && obj.IsField() {
			return obj
		}
	}
	return nil
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
