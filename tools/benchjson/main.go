// Command benchjson runs the repository's kernel benchmarks and
// records them as JSON, so the performance trajectory of the aFSA
// compute kernel is diffable across PRs instead of living in CI logs.
//
// It shells out to `go test -bench` for each target, parses the
// standard benchmark output (including -benchmem columns and custom
// ReportMetric units), and merges the results into the output file
// under the given run label:
//
//	go run ./tools/benchjson -label after -out BENCH_afsa.json
//
// Repeated runs with different labels accumulate side by side in one
// file — the committed BENCH_afsa.json keeps a "before"/"after" pair
// per optimization PR. The schema is documented in docs/bench.md and
// pinned by the docscheck-style CI step (see .github/workflows).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// target is one `go test -bench` invocation.
type target struct {
	Pkg   string
	Bench string
}

// defaultTargets covers the kernel benchmarks the perf acceptance
// criteria track: whole-scenario consistency, the operator scaling
// series, public-process derivation, the bulk-migration sweep, and the
// streaming event-ingestion path, and the mixed-traffic load harness.
var defaultTargets = []target{
	{Pkg: ".", Bench: "^(BenchmarkScenarioConsistency|BenchmarkIntersectScale|BenchmarkMinimizeScale|BenchmarkDeriveScale|BenchmarkScenarioCommitJournal)$"},
	{Pkg: "./internal/store", Bench: "^(BenchmarkMigrateAll|BenchmarkIngestEvents|BenchmarkChaosSoak)$"},
	{Pkg: "./internal/loadgen", Bench: "^(BenchmarkLoadgen|BenchmarkLoadgenFaults)$"},
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled benchmark sweep.
type Run struct {
	RecordedAt string      `json:"recorded_at"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk schema (docs/bench.md).
type File struct {
	Schema string         `json:"schema"`
	Runs   map[string]Run `json:"runs"`
}

const schemaVersion = "choreod-bench/v1"

func main() {
	out := flag.String("out", "BENCH_afsa.json", "output JSON file (merged into if it exists)")
	runLabel := flag.String("label", "", "run label to record under (e.g. before, after, ci); required")
	benchtime := flag.String("benchtime", "200ms", "passed to go test -benchtime")
	count := flag.Int("count", 1, "passed to go test -count")
	flag.Parse()
	if *runLabel == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	run := Run{
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchtime:  *benchtime,
	}
	for _, t := range defaultTargets {
		bs, err := runTarget(t, *benchtime, *count)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", t.Pkg, err)
			os.Exit(1)
		}
		run.Benchmarks = append(run.Benchmarks, bs...)
	}
	if len(run.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}

	file := File{Schema: schemaVersion, Runs: map[string]Run{}}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s unreadable: %v\n", *out, err)
			os.Exit(1)
		}
		if file.Runs == nil {
			file.Runs = map[string]Run{}
		}
	}
	file.Schema = schemaVersion
	file.Runs[*runLabel] = run

	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: recorded %d benchmarks as %q in %s\n", len(run.Benchmarks), *runLabel, *out)
}

func runTarget(t target, benchtime string, count int) ([]Benchmark, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", t.Bench,
		"-benchtime", benchtime,
		"-count", strconv.Itoa(count),
		"-benchmem", t.Pkg)
	cmd.Env = os.Environ()
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test: %v\n%s", err, outBytes)
	}
	return parseBench(t.Pkg, string(outBytes))
}

// benchLine matches e.g.
//
//	BenchmarkMinimizeScale/n=8-8   10000   25578 ns/op   12032 B/op   318 allocs/op
var procSuffix = regexp.MustCompile(`-\d+$`)

func parseBench(pkg, out string) ([]Benchmark, error) {
	var res []Benchmark
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       procSuffix.ReplaceAllString(fields[0], ""),
			Package:    pkg,
			Iterations: iters,
		}
		// The remainder alternates value/unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %v", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		res = append(res, b)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", out)
	}
	return res, nil
}
